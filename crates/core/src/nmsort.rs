//! NMsort: the practical two-phase near-memory parallel sort (§IV-D).
//!
//! **Phase 1.** Stream `Θ(M)`-sized chunks of the input into the scratchpad;
//! sort each chunk there with a parallel external mergesort; write the
//! sorted chunk back to DRAM; and extract *bucket metadata* — per chunk, the
//! `BucketPos` array (first index of every bucket in the sorted chunk), and
//! globally the `BucketTot` array (aggregate bucket sizes), which stays
//! resident in the scratchpad for the whole run. Recording metadata instead
//! of eagerly scattering bucket elements avoids the many small DRAM
//! transfers that made the naive algorithm unable to exploit the scratchpad.
//!
//! **Phase 2.** Greedily take maximal runs of consecutive buckets whose
//! total size fits the scratchpad ("we batched thousands of buckets into one
//! transfer"); gather the corresponding segment of every sorted chunk into
//! the scratchpad; multiway-merge the segments (they are sorted); and stream
//! the merged batch to its final position in DRAM.
//!
//! Inputs with heavy duplication can produce single buckets larger than the
//! scratchpad; those are split by sampled sub-splitters and, in the limit
//! (too few distinct keys to split), merged directly from DRAM — correct for
//! arbitrary inputs, merely less scratchpad-accelerated, and counted
//! honestly either way.

use crate::bucketize::{accumulate_totals, bucket_positions, BucketPositions};
use crate::extsort::{external_sort, ExtSortConfig, RegionLevel};
use crate::par::{charge_compute_striped, charge_io_striped, charged_copy, CopyKind};
use crate::pmerge::parallel_merge;
use crate::quicksort::external_quicksort;
use crate::sample::{draw_pivots, PivotSample};
use crate::{SortElem, SortError};
use rayon::prelude::*;
use tlmm_model::CostSnapshot;
use tlmm_scratchpad::trace::with_lane;
use tlmm_scratchpad::{Dir, FarArray, TwoLevel};

/// Which algorithm sorts each chunk inside the scratchpad (§III-A: "Other
/// sorting algorithms could be used, such as quicksort").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkSorter {
    /// Multiway mergesort with fanout `Z/ρB` (Corollary 3; the paper's
    /// choice — "practically competitive" at hardware-realistic ρ).
    #[default]
    MultiwayMerge,
    /// External quicksort (Corollary 7; optimal only when ρ = Ω(lg M/Z)).
    Quicksort,
}

/// Tuning knobs for [`nmsort`].
#[derive(Debug, Clone)]
pub struct NmSortConfig {
    /// Virtual lanes (simulated cores) to attribute work to. The paper's
    /// Fig. 4 machine has 256.
    pub sim_lanes: usize,
    /// Elements per Phase-1 chunk. Default: 40 % of the scratchpad, leaving
    /// an equal-sized merge buffer plus bookkeeping space.
    pub chunk_elems: Option<usize>,
    /// Number of pivots (`m`, so `m+1` buckets). Default:
    /// `min(M/4B, chunk/8, 65536)`.
    pub n_pivots: Option<usize>,
    /// RNG seed for pivot sampling.
    pub seed: u64,
    /// Real host parallelism (rayon) in addition to virtual-lane accounting.
    pub parallel: bool,
    /// Mark ingest phases overlappable (DMA double-buffering semantics).
    pub use_dma: bool,
    /// In-scratchpad chunk sorting algorithm.
    pub chunk_sorter: ChunkSorter,
}

impl Default for NmSortConfig {
    fn default() -> Self {
        Self {
            sim_lanes: 8,
            chunk_elems: None,
            n_pivots: None,
            seed: 0x5EED_CAFE,
            parallel: true,
            use_dma: false,
            chunk_sorter: ChunkSorter::MultiwayMerge,
        }
    }
}

/// Result of an [`nmsort`] run.
#[derive(Debug)]
pub struct NmSortReport<T> {
    /// The sorted output, resident in far memory.
    pub output: FarArray<T>,
    /// Phase-1 chunks processed.
    pub chunks: usize,
    /// Pivots used (after deduplication).
    pub n_pivots: usize,
    /// Phase-2 batches (bucket groups merged per scratchpad fill).
    pub batches: usize,
    /// Oversized buckets that required sub-splitting or streaming.
    pub oversized_buckets: usize,
    /// Ledger delta of the sampling step.
    pub sample_cost: CostSnapshot,
    /// Ledger delta of Phase 1.
    pub phase1_cost: CostSnapshot,
    /// Ledger delta of Phase 2.
    pub phase2_cost: CostSnapshot,
}

struct Geometry {
    chunk: usize,
    n_pivots: usize,
    n_chunks: usize,
}

fn geometry<T: SortElem>(
    tl: &TwoLevel,
    n: usize,
    cfg: &NmSortConfig,
) -> Result<Geometry, SortError> {
    let elem = std::mem::size_of::<T>();
    let m_elems = tl.params().scratchpad_capacity_elems(elem);
    let default_chunk = (m_elems * 2 / 5).max(2);
    let chunk = cfg.chunk_elems.unwrap_or(default_chunk).clamp(1, n.max(1));
    let n_chunks = n.div_ceil(chunk.max(1)).max(1);
    let n_pivots = if n_chunks <= 1 {
        0
    } else {
        cfg.n_pivots
            .unwrap_or_else(|| {
                let by_blocks = (tl.params().scratchpad_blocks() / 4) as usize;
                by_blocks.min(chunk / 8).min(65_536)
            })
            .max(1)
    };
    // Feasibility: two chunk buffers + pivots + totals must fit in M.
    let needed = (2 * chunk * elem + n_pivots * elem + (n_pivots + 1) * 8) as u64;
    if needed > tl.params().scratchpad_bytes {
        return Err(SortError::ScratchpadTooSmall {
            needed,
            available: tl.params().scratchpad_bytes,
        });
    }
    Ok(Geometry {
        chunk,
        n_pivots,
        n_chunks,
    })
}

/// Greedy batch plan over buckets: maximal consecutive groups with total
/// size ≤ `cap`. A single bucket larger than `cap` forms its own batch.
fn plan_batches(totals: &[u64], cap: u64) -> Vec<(usize, usize)> {
    let mut batches = Vec::new();
    let mut lo = 0usize;
    let mut acc = 0u64;
    for (i, &t) in totals.iter().enumerate() {
        if acc > 0 && acc + t > cap {
            batches.push((lo, i));
            lo = i;
            acc = 0;
        }
        acc += t;
    }
    if acc > 0 || lo < totals.len() {
        batches.push((lo, totals.len()));
    }
    batches.retain(|(a, b)| a < b);
    batches
}

/// Sort `input` with NMsort; returns the sorted output and a report.
pub fn nmsort<T: SortElem>(
    tl: &TwoLevel,
    input: FarArray<T>,
    cfg: &NmSortConfig,
) -> Result<NmSortReport<T>, SortError> {
    let n = input.len();
    let lanes = cfg.sim_lanes.max(1);
    if n == 0 {
        return Ok(NmSortReport {
            output: input,
            chunks: 0,
            n_pivots: 0,
            batches: 0,
            oversized_buckets: 0,
            sample_cost: CostSnapshot::default(),
            phase1_cost: CostSnapshot::default(),
            phase2_cost: CostSnapshot::default(),
        });
    }
    let _run_span = tlmm_telemetry::span!("nmsort");
    let geo = geometry::<T>(tl, n, cfg)?;
    let base = tl.ledger().snapshot();

    // ---- Pivot sample (kept resident in the scratchpad) ---------------
    tl.begin_phase("nmsort.sample");
    let sample: PivotSample<T> = if geo.n_chunks > 1 {
        draw_pivots(tl, &input, geo.n_pivots, cfg.seed, lanes)
    } else {
        PivotSample {
            pivots: Vec::new(),
            drawn: 0,
        }
    };
    tl.end_phase();
    let after_sample = tl.ledger().snapshot();

    // ---- Scratchpad allocations ---------------------------------------
    // chunk_buf: ingest + gather space; scratch_buf: sort ping-pong + merge
    // output; pivot_res reserves the resident sample; totals = BucketTot.
    let mut chunk_buf = tl.near_alloc::<T>(geo.chunk)?;
    let mut scratch_buf = tl.near_alloc::<T>(geo.chunk)?;
    let _pivot_res = tl.near_alloc::<T>(sample.pivots.len())?;
    let mut totals_buf = tl.near_alloc::<u64>(sample.n_buckets())?;

    // ---- Phase 1 --------------------------------------------------------
    let mut sorted_chunks = tl.far_alloc::<T>(n);
    let mut all_positions: Vec<BucketPositions> = Vec::with_capacity(geo.n_chunks);
    let ext_cfg = ExtSortConfig {
        lanes,
        parallel: cfg.parallel,
        ..Default::default()
    };
    for k in 0..geo.n_chunks {
        let lo = k * geo.chunk;
        let hi = ((k + 1) * geo.chunk).min(n);
        let len = hi - lo;

        tl.begin_phase("nmsort.p1.ingest");
        if cfg.use_dma {
            tl.mark_phase_overlappable();
        }
        charged_copy(
            tl,
            CopyKind::FarToNear,
            &input.as_slice_uncharged()[lo..hi],
            &mut chunk_buf.as_mut_slice_uncharged()[..len],
            lanes,
            cfg.parallel,
        );

        tl.begin_phase("nmsort.p1.sort");
        let sorted: &[T] = match cfg.chunk_sorter {
            ChunkSorter::MultiwayMerge => {
                let outcome = external_sort(
                    tl,
                    RegionLevel::Near,
                    &mut chunk_buf.as_mut_slice_uncharged()[..len],
                    &mut scratch_buf.as_mut_slice_uncharged()[..len],
                    &ext_cfg,
                );
                if outcome.in_scratch {
                    &scratch_buf.as_slice_uncharged()[..len]
                } else {
                    &chunk_buf.as_slice_uncharged()[..len]
                }
            }
            ChunkSorter::Quicksort => {
                external_quicksort(
                    tl,
                    RegionLevel::Near,
                    &mut chunk_buf.as_mut_slice_uncharged()[..len],
                    lanes,
                );
                &chunk_buf.as_slice_uncharged()[..len]
            }
        };

        tl.begin_phase("nmsort.p1.writeback");
        if cfg.use_dma {
            tl.mark_phase_overlappable();
        }
        charged_copy(
            tl,
            CopyKind::NearToFar,
            sorted,
            &mut sorted_chunks.as_mut_slice_uncharged()[lo..hi],
            lanes,
            cfg.parallel,
        );

        if geo.n_chunks > 1 {
            tl.begin_phase("nmsort.p1.bounds");
            let pos = bucket_positions(
                tl,
                RegionLevel::Near,
                sorted,
                &sample.pivots,
                lanes,
                cfg.parallel,
            );
            accumulate_totals(tl, totals_buf.as_mut_slice_uncharged(), &pos, lanes);
            // BucketPos for this chunk goes to DRAM (the auxiliary array of
            // Fig. 2(c)); the write is a cooperative stream like the data
            // transfers.
            charge_io_striped(
                tl,
                RegionLevel::Far,
                Dir::Write,
                (pos.len() * 8) as u64,
                lanes,
            );
            all_positions.push(pos);
        }
        tl.end_phase();
    }
    let after_p1 = tl.ledger().snapshot();

    // ---- Phase 2 --------------------------------------------------------
    let mut batches_run = 0usize;
    let mut oversized = 0usize;
    let output = if geo.n_chunks == 1 {
        // The single sorted chunk already is the final list.
        sorted_chunks
    } else {
        let mut output = tl.far_alloc::<T>(n);
        // Read BucketTot (resident in near) to plan batches (Fig. 3(a)).
        tl.begin_phase("nmsort.p2.plan");
        let totals: Vec<u64> = totals_buf.as_slice_uncharged().to_vec();
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Read,
            (totals.len() * 8) as u64,
            lanes,
        );
        let cap = geo.chunk as u64;
        let batches = plan_batches(&totals, cap);
        batches_run = batches.len();

        let chunk_starts: Vec<usize> = (0..geo.n_chunks).map(|k| k * geo.chunk).collect();
        let mut out_off = 0usize;
        for (blo, bhi) in batches {
            let total: u64 = totals[blo..bhi].iter().sum();
            if total == 0 {
                continue;
            }
            if total <= cap {
                merge_batch_via_scratchpad(
                    tl,
                    &sorted_chunks,
                    &all_positions,
                    &chunk_starts,
                    (blo, bhi),
                    &mut chunk_buf,
                    &mut scratch_buf,
                    &mut output,
                    out_off,
                    total as usize,
                    lanes,
                    cfg.parallel,
                );
            } else {
                oversized += 1;
                merge_oversized_bucket(
                    tl,
                    &sorted_chunks,
                    &all_positions,
                    &chunk_starts,
                    (blo, bhi),
                    &mut chunk_buf,
                    &mut scratch_buf,
                    &mut output,
                    out_off,
                    total as usize,
                    lanes,
                    cfg.parallel,
                );
            }
            out_off += total as usize;
        }
        debug_assert_eq!(out_off, n, "batches must cover the input exactly");
        output
    };

    let after_p2 = tl.ledger().snapshot();
    Ok(NmSortReport {
        output,
        chunks: geo.n_chunks,
        n_pivots: sample.pivots.len(),
        batches: batches_run,
        oversized_buckets: oversized,
        sample_cost: after_sample.since(&base),
        phase1_cost: after_p1.since(&after_sample),
        phase2_cost: after_p2.since(&after_p1),
    })
}

/// Per-chunk segment of a bucket range: `(chunk_global_lo, chunk_global_hi)`
/// element offsets into the `sorted_chunks` array.
fn batch_segments(
    all_positions: &[BucketPositions],
    chunk_starts: &[usize],
    (blo, bhi): (usize, usize),
) -> Vec<(usize, usize)> {
    all_positions
        .iter()
        .zip(chunk_starts)
        .map(|(pos, &start)| (start + pos[blo] as usize, start + pos[bhi] as usize))
        .collect()
}

/// Standard Phase-2 batch: gather segments into the scratchpad, merge them
/// there, stream the result out.
#[allow(clippy::too_many_arguments)]
fn merge_batch_via_scratchpad<T: SortElem>(
    tl: &TwoLevel,
    sorted_chunks: &FarArray<T>,
    all_positions: &[BucketPositions],
    chunk_starts: &[usize],
    bucket_range: (usize, usize),
    gather_buf: &mut tlmm_scratchpad::NearArray<T>,
    merge_buf: &mut tlmm_scratchpad::NearArray<T>,
    output: &mut FarArray<T>,
    out_off: usize,
    total: usize,
    lanes: usize,
    parallel: bool,
) {
    let elem = std::mem::size_of::<T>() as u64;
    let segs = batch_segments(all_positions, chunk_starts, bucket_range);

    // -- Gather: one parallel transfer per chunk segment ----------------
    tl.begin_phase("nmsort.p2.gather");
    let src = sorted_chunks.as_slice_uncharged();
    let gather = gather_buf.as_mut_slice_uncharged();
    {
        // Carve the gather buffer into per-segment destinations.
        let mut dsts: Vec<&mut [T]> = Vec::with_capacity(segs.len());
        let mut rest = &mut gather[..total];
        for &(lo, hi) in &segs {
            let (a, b) = rest.split_at_mut(hi - lo);
            dsts.push(a);
            rest = b;
        }
        let copy_one = |(k, (&(lo, hi), dst)): (usize, (&(usize, usize), &mut [T]))| {
            with_lane(k % lanes, || {
                // Reading this chunk's BucketPos boundary pair from DRAM.
                tl.charge_far_random(Dir::Read, 2, 16);
                if hi > lo {
                    dst.copy_from_slice(&src[lo..hi]);
                }
            })
        };
        if parallel {
            segs.par_iter()
                .zip(dsts.into_par_iter())
                .enumerate()
                .for_each(copy_one);
        } else {
            segs.iter().zip(dsts).enumerate().for_each(copy_one);
        }
        // The gather streams the whole batch; all lanes cooperate on the
        // transfer (segments are subdivided further on a real machine), so
        // the volume is charged striped rather than one-lane-per-chunk.
        charge_io_striped(tl, RegionLevel::Far, Dir::Read, total as u64 * elem, lanes);
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Write,
            total as u64 * elem,
            lanes,
        );
    }

    // -- Merge inside the scratchpad -------------------------------------
    tl.begin_phase("nmsort.p2.merge");
    {
        let gather: &[T] = gather_buf.as_slice_uncharged();
        let mut seg_slices: Vec<&[T]> = Vec::with_capacity(segs.len());
        let mut cursor = 0usize;
        for &(lo, hi) in &segs {
            seg_slices.push(&gather[cursor..cursor + (hi - lo)]);
            cursor += hi - lo;
        }
        let out = &mut merge_buf.as_mut_slice_uncharged()[..total];
        let cmps = parallel_merge(&seg_slices, out, lanes, parallel);
        // Merge streams the batch through cache once each way.
        charge_io_striped(tl, RegionLevel::Near, Dir::Read, total as u64 * elem, lanes);
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Write,
            total as u64 * elem,
            lanes,
        );
        charge_compute_striped(tl, cmps, lanes);
    }

    // -- Stream the merged batch to its final DRAM position -------------
    tl.begin_phase("nmsort.p2.writeout");
    charged_copy(
        tl,
        CopyKind::NearToFar,
        &merge_buf.as_slice_uncharged()[..total],
        &mut output.as_mut_slice_uncharged()[out_off..out_off + total],
        lanes,
        parallel,
    );
    tl.end_phase();
}

/// A single bucket larger than the scratchpad: split it into
/// scratchpad-sized parts by sampled sub-splitters and run each part as a
/// normal batch; parts that still do not fit (too few distinct keys) are
/// merged straight from DRAM.
#[allow(clippy::too_many_arguments)]
fn merge_oversized_bucket<T: SortElem>(
    tl: &TwoLevel,
    sorted_chunks: &FarArray<T>,
    all_positions: &[BucketPositions],
    chunk_starts: &[usize],
    bucket_range: (usize, usize),
    gather_buf: &mut tlmm_scratchpad::NearArray<T>,
    merge_buf: &mut tlmm_scratchpad::NearArray<T>,
    output: &mut FarArray<T>,
    out_off: usize,
    total: usize,
    lanes: usize,
    parallel: bool,
) {
    let elem = std::mem::size_of::<T>() as u64;
    let cap = gather_buf.len();
    let segs = batch_segments(all_positions, chunk_starts, bucket_range);
    let src = sorted_chunks.as_slice_uncharged();

    // Sample sub-splitters from the bucket's segments (random far reads).
    tl.begin_phase("nmsort.p2.subsplit");
    let n_parts = total.div_ceil(cap / 2) + 1;
    let mut sample: Vec<T> = Vec::new();
    for &(lo, hi) in &segs {
        let len = hi - lo;
        if len == 0 {
            continue;
        }
        let want = ((16 * n_parts * len) / total).max(1);
        let step = (len / want).max(1);
        sample.extend(src[lo..hi].iter().step_by(step).copied());
    }
    tl.charge_far_random(Dir::Read, sample.len() as u64, sample.len() as u64 * elem);
    sample.sort_unstable();
    tl.charge_compute(sample.len() as u64 * crate::ceil_lg(sample.len()));
    sample.dedup();
    let mut splitters: Vec<T> = (1..n_parts)
        .map(|t| sample[(t * sample.len() / n_parts).min(sample.len() - 1)])
        .collect();
    splitters.dedup();

    // Per-splitter boundaries inside each segment (binary searches on DRAM).
    let mut cuts: Vec<Vec<usize>> = Vec::with_capacity(splitters.len() + 1);
    for s in &splitters {
        let row: Vec<usize> = segs
            .iter()
            .map(|&(lo, hi)| lo + src[lo..hi].partition_point(|x| x <= s))
            .collect();
        tl.charge_far_random(
            Dir::Read,
            segs.len() as u64 * crate::ceil_lg(total),
            segs.len() as u64 * crate::ceil_lg(total) * elem,
        );
        cuts.push(row);
    }
    cuts.push(segs.iter().map(|&(_, hi)| hi).collect());
    tl.end_phase();

    // Run each part.
    let mut part_off = out_off;
    let mut prev: Vec<usize> = segs.iter().map(|&(lo, _)| lo).collect();
    for row in cuts {
        let part_segs: Vec<(usize, usize)> = prev.iter().zip(&row).map(|(&a, &b)| (a, b)).collect();
        let part_total: usize = part_segs.iter().map(|&(a, b)| b - a).sum();
        prev = row;
        if part_total == 0 {
            continue;
        }
        if part_total <= cap {
            merge_part_via_scratchpad(
                tl, src, &part_segs, gather_buf, merge_buf, output, part_off, part_total, lanes,
                parallel,
            );
        } else {
            // Degenerate duplication: merge straight from DRAM.
            tl.begin_phase("nmsort.p2.stream_far");
            let seg_slices: Vec<&[T]> = part_segs.iter().map(|&(a, b)| &src[a..b]).collect();
            let out = &mut output.as_mut_slice_uncharged()[part_off..part_off + part_total];
            let cmps = parallel_merge(&seg_slices, out, lanes, parallel);
            charge_io_striped(
                tl,
                RegionLevel::Far,
                Dir::Read,
                part_total as u64 * elem,
                lanes,
            );
            charge_io_striped(
                tl,
                RegionLevel::Far,
                Dir::Write,
                part_total as u64 * elem,
                lanes,
            );
            charge_compute_striped(tl, cmps, lanes);
            tl.end_phase();
        }
        part_off += part_total;
    }
    debug_assert_eq!(
        part_off,
        out_off + total,
        "oversized parts must cover bucket"
    );
}

/// Gather + merge + writeout for an explicit segment list (used by the
/// oversized-bucket path).
#[allow(clippy::too_many_arguments)]
fn merge_part_via_scratchpad<T: SortElem>(
    tl: &TwoLevel,
    src: &[T],
    part_segs: &[(usize, usize)],
    gather_buf: &mut tlmm_scratchpad::NearArray<T>,
    merge_buf: &mut tlmm_scratchpad::NearArray<T>,
    output: &mut FarArray<T>,
    out_off: usize,
    total: usize,
    lanes: usize,
    parallel: bool,
) {
    let elem = std::mem::size_of::<T>() as u64;
    tl.begin_phase("nmsort.p2.gather");
    {
        let gather = &mut gather_buf.as_mut_slice_uncharged()[..total];
        let mut cursor = 0usize;
        for &(lo, hi) in part_segs {
            gather[cursor..cursor + (hi - lo)].copy_from_slice(&src[lo..hi]);
            cursor += hi - lo;
        }
        charge_io_striped(tl, RegionLevel::Far, Dir::Read, total as u64 * elem, lanes);
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Write,
            total as u64 * elem,
            lanes,
        );
    }
    tl.begin_phase("nmsort.p2.merge");
    {
        let gather: &[T] = gather_buf.as_slice_uncharged();
        let mut seg_slices: Vec<&[T]> = Vec::with_capacity(part_segs.len());
        let mut cursor = 0usize;
        for &(lo, hi) in part_segs {
            seg_slices.push(&gather[cursor..cursor + (hi - lo)]);
            cursor += hi - lo;
        }
        let out = &mut merge_buf.as_mut_slice_uncharged()[..total];
        let cmps = parallel_merge(&seg_slices, out, lanes, parallel);
        charge_io_striped(tl, RegionLevel::Near, Dir::Read, total as u64 * elem, lanes);
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Write,
            total as u64 * elem,
            lanes,
        );
        charge_compute_striped(tl, cmps, lanes);
    }
    tl.begin_phase("nmsort.p2.writeout");
    charged_copy(
        tl,
        CopyKind::NearToFar,
        &merge_buf.as_slice_uncharged()[..total],
        &mut output.as_mut_slice_uncharged()[out_off..out_off + total],
        lanes,
        parallel,
    );
    tl.end_phase();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tlmm_model::ScratchpadParams;

    fn tl_small() -> TwoLevel {
        // M = 1 MiB, Z = 16 KiB, B = 64, rho = 4.
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    fn assert_sorted_matches(report: &NmSortReport<u64>, mut expect: Vec<u64>) {
        expect.sort_unstable();
        assert_eq!(report.output.as_slice_uncharged(), expect.as_slice());
    }

    #[test]
    fn sorts_multi_chunk_input() {
        let tl = tl_small();
        // M holds 131072 u64; chunk ≈ 52428; use n = 500k for ~10 chunks.
        let v = random_vec(500_000, 42);
        let input = tl.far_from_vec(v.clone());
        let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        assert!(report.chunks >= 8, "chunks = {}", report.chunks);
        assert!(report.batches >= 2);
        assert_sorted_matches(&report, v);
    }

    #[test]
    fn sorts_single_chunk_input() {
        let tl = tl_small();
        let v = random_vec(10_000, 1);
        let input = tl.far_from_vec(v.clone());
        let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        assert_eq!(report.chunks, 1);
        assert_eq!(report.n_pivots, 0);
        assert_sorted_matches(&report, v);
    }

    #[test]
    fn sorts_empty_and_tiny() {
        let tl = tl_small();
        for n in [0usize, 1, 2, 3] {
            let v = random_vec(n, n as u64);
            let input = tl.far_from_vec(v.clone());
            let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
            assert_sorted_matches(&report, v);
        }
    }

    #[test]
    fn sorts_presorted_reverse_and_equal() {
        let tl = tl_small();
        let n = 300_000usize;
        let cases: Vec<Vec<u64>> = vec![
            (0..n as u64).collect(),
            (0..n as u64).rev().collect(),
            vec![7; n],
        ];
        for v in cases {
            let input = tl.far_from_vec(v.clone());
            let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
            assert_sorted_matches(&report, v);
        }
    }

    #[test]
    fn all_equal_forces_oversized_bucket_path() {
        let tl = tl_small();
        let n = 400_000usize;
        let v = vec![99u64; n];
        let input = tl.far_from_vec(v.clone());
        let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        assert!(report.oversized_buckets >= 1);
        assert_sorted_matches(&report, v);
    }

    #[test]
    fn few_distinct_keys() {
        let tl = tl_small();
        let n = 400_000usize;
        let v: Vec<u64> = (0..n).map(|i| (i % 3) as u64).collect();
        let input = tl.far_from_vec(v.clone());
        let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        assert_sorted_matches(&report, v);
    }

    #[test]
    fn respects_explicit_geometry() {
        let tl = tl_small();
        let v = random_vec(100_000, 5);
        let input = tl.far_from_vec(v.clone());
        let cfg = NmSortConfig {
            chunk_elems: Some(10_000),
            n_pivots: Some(100),
            ..Default::default()
        };
        let report = nmsort(&tl, input, &cfg).unwrap();
        assert_eq!(report.chunks, 10);
        assert!(report.n_pivots <= 100);
        assert_sorted_matches(&report, v);
    }

    #[test]
    fn rejects_oversized_chunk_config() {
        let tl = tl_small();
        let input = tl.far_from_vec(random_vec(100_000, 6));
        let cfg = NmSortConfig {
            chunk_elems: Some(100_000), // 2x 800KB buffers > 1MB scratchpad
            ..Default::default()
        };
        match nmsort(&tl, input, &cfg) {
            Err(SortError::ScratchpadTooSmall { .. }) => {}
            other => panic!("expected ScratchpadTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn sequential_and_parallel_agree_on_ledger() {
        let run = |parallel| {
            let tl = tl_small();
            let input = tl.far_from_vec(random_vec(200_000, 7));
            let cfg = NmSortConfig {
                parallel,
                ..Default::default()
            };
            nmsort(&tl, input, &cfg).unwrap();
            tl.ledger().snapshot()
        };
        let a = run(true);
        let b = run(false);
        assert_eq!(a.far_bytes, b.far_bytes);
        assert_eq!(a.near_bytes, b.near_bytes);
    }

    #[test]
    fn far_traffic_is_a_few_passes() {
        // NMsort's DRAM traffic should be ~4 passes over the data
        // (ingest read, writeback write, gather read, writeout write) plus
        // metadata — far below a DRAM-only sort's traffic.
        let tl = tl_small();
        let n = 500_000usize;
        let input = tl.far_from_vec(random_vec(n, 8));
        nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        let s = tl.ledger().snapshot();
        let data_bytes = (n * 8) as u64;
        assert!(s.far_bytes >= 4 * data_bytes, "far {} B", s.far_bytes);
        assert!(s.far_bytes <= 5 * data_bytes, "far {} B", s.far_bytes);
        // Near traffic dominates far traffic (the whole point).
        assert!(s.near_bytes > s.far_bytes);
    }

    #[test]
    fn phase_costs_partition_total() {
        let tl = tl_small();
        let input = tl.far_from_vec(random_vec(300_000, 9));
        let r = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        let s = tl.ledger().snapshot();
        let sum = r.sample_cost + r.phase1_cost + r.phase2_cost;
        assert_eq!(sum.far_bytes, s.far_bytes);
        assert_eq!(sum.near_bytes, s.near_bytes);
        assert_eq!(sum.compute_ops, s.compute_ops);
    }

    #[test]
    fn trace_has_expected_phases() {
        let tl = tl_small();
        let input = tl.far_from_vec(random_vec(300_000, 10));
        nmsort(&tl, input, &NmSortConfig::default()).unwrap();
        let t = tl.take_trace();
        let names: std::collections::HashSet<&str> =
            t.phases.iter().map(|p| p.name.as_str()).collect();
        for expected in [
            "nmsort.sample",
            "nmsort.p1.ingest",
            "nmsort.p1.sort",
            "nmsort.p1.writeback",
            "nmsort.p1.bounds",
            "nmsort.p2.gather",
            "nmsort.p2.merge",
            "nmsort.p2.writeout",
        ] {
            assert!(names.contains(expected), "missing phase {expected}");
        }
    }

    #[test]
    fn dma_marks_ingest_overlappable() {
        let tl = tl_small();
        let input = tl.far_from_vec(random_vec(200_000, 11));
        let cfg = NmSortConfig {
            use_dma: true,
            ..Default::default()
        };
        nmsort(&tl, input, &cfg).unwrap();
        let t = tl.take_trace();
        assert!(t
            .phases
            .iter()
            .filter(|p| p.name == "nmsort.p1.ingest")
            .all(|p| p.overlappable));
        assert!(t
            .phases
            .iter()
            .filter(|p| p.name == "nmsort.p1.sort")
            .all(|p| !p.overlappable));
    }

    #[test]
    fn quicksort_chunk_sorter_sorts_and_costs_more_near_traffic() {
        let run = |sorter: ChunkSorter| {
            let tl = tl_small();
            let v = random_vec(300_000, 21);
            let mut expect = v.clone();
            expect.sort_unstable();
            let input = tl.far_from_vec(v);
            let cfg = NmSortConfig {
                chunk_sorter: sorter,
                ..Default::default()
            };
            let r = nmsort(&tl, input, &cfg).unwrap();
            assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
            tl.ledger().snapshot().near_blocks()
        };
        let merge = run(ChunkSorter::MultiwayMerge);
        let quick = run(ChunkSorter::Quicksort);
        // rho = 4 on this geometry is below Corollary 7's optimality point,
        // so quicksort should stream more near blocks.
        assert!(quick > merge, "quick {quick} vs merge {merge}");
    }

    #[test]
    fn plan_batches_greedy() {
        assert_eq!(plan_batches(&[5, 5, 5], 10), vec![(0, 2), (2, 3)]);
        assert_eq!(plan_batches(&[20], 10), vec![(0, 1)]);
        assert_eq!(plan_batches(&[3, 20, 3], 10), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(plan_batches(&[], 10), Vec::<(usize, usize)>::new());
        assert_eq!(plan_batches(&[0, 0, 4], 10), vec![(0, 3)]);
    }
}
