//! Random pivot sampling (§III-A).
//!
//! The sorting algorithms choose a sample `X` of `m = Θ(M/B)` elements from
//! the input (with replacement), move it into the scratchpad, and sort it
//! there. Every sampled element costs one *random* far-memory block read —
//! random accesses pay for a whole block however few bytes they use.

use crate::SortElem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlmm_scratchpad::{Dir, FarArray, TwoLevel};

/// A sorted pivot sample resident in the scratchpad.
#[derive(Debug, Clone)]
pub struct PivotSample<T> {
    /// The sorted, deduplicated pivots.
    pub pivots: Vec<T>,
    /// How many raw samples were drawn (before dedup).
    pub drawn: usize,
}

impl<T: SortElem> PivotSample<T> {
    /// Number of buckets the pivots induce (`pivots.len() + 1`):
    /// bucket `i` holds elements in `(pivot[i-1], pivot[i]]`, with bucket 0
    /// unbounded below and the last bucket unbounded above.
    pub fn n_buckets(&self) -> usize {
        self.pivots.len() + 1
    }

    /// Bucket index for `v` via binary search:
    /// the first bucket whose upper pivot is `>= v`.
    pub fn bucket_of(&self, v: &T) -> usize {
        self.pivots.partition_point(|p| p < v)
    }
}

/// Draw `m` samples (with replacement) from `input`, move them to the
/// scratchpad, sort them there (in parallel across `lanes`), and
/// deduplicate.
///
/// Charges: `m` random far block reads (gather), one near write of the
/// sample (scatter into the scratchpad), and an in-scratchpad sort of the
/// sample, all striped across the lanes that would cooperate on it.
pub fn draw_pivots<T: SortElem>(
    tl: &TwoLevel,
    input: &FarArray<T>,
    m: usize,
    seed: u64,
    lanes: usize,
) -> PivotSample<T> {
    let n = input.len();
    if n == 0 || m == 0 {
        return PivotSample {
            pivots: Vec::new(),
            drawn: 0,
        };
    }
    let lanes = lanes.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let data = input.as_slice_uncharged();
    let mut sample: Vec<T> = (0..m).map(|_| data[rng.gen_range(0..n)]).collect();

    let elem = std::mem::size_of::<T>() as u64;
    // Stripe the gather/scatter/sort charges across the cooperating lanes.
    let base = tlmm_scratchpad::trace::current_lane();
    let per = m.div_ceil(lanes);
    let mut at = 0usize;
    let mut lane = 0usize;
    while at < m {
        let take = per.min(m - at);
        tlmm_scratchpad::with_lane(base + lane, || {
            tl.charge_far_random(Dir::Read, take as u64, take as u64 * elem);
            tl.charge_near_io(Dir::Write, take as u64 * elem);
            // One in-cache sort round for this lane's share plus its part of
            // the merge (lg m comparisons per element overall).
            tl.charge_near_io(Dir::Read, take as u64 * elem);
            tl.charge_near_io(Dir::Write, take as u64 * elem);
            tl.charge_compute(take as u64 * crate::ceil_lg(m));
        });
        at += take;
        lane = (lane + 1) % lanes;
    }
    sample.sort_unstable();
    sample.dedup();

    PivotSample {
        pivots: sample,
        drawn: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    #[test]
    fn pivots_sorted_and_unique() {
        let tl = tl();
        let input = tl.far_from_vec((0u64..100_000).map(|i| i % 1000).collect::<Vec<_>>());
        let s = draw_pivots(&tl, &input, 256, 42, 4);
        assert!(s.pivots.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.drawn, 256);
        assert!(s.pivots.len() <= 256);
    }

    #[test]
    fn charges_random_reads_per_draw() {
        let tl = tl();
        let input = tl.far_from_vec((0u64..10_000).collect::<Vec<_>>());
        let m = 128;
        draw_pivots(&tl, &input, m, 7, 1);
        let s = tl.ledger().snapshot();
        assert_eq!(s.far_read_blocks, m as u64, "one block per random draw");
        assert!(s.near_write_blocks >= 1);
        assert!(s.compute_ops > 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let tl1 = tl();
        let tl2 = tl();
        let v: Vec<u64> = (0..50_000).map(|i| i * 7 % 999).collect();
        let a = draw_pivots(&tl1, &tl1.far_from_vec(v.clone()), 64, 11, 4);
        let b = draw_pivots(&tl2, &tl2.far_from_vec(v), 64, 11, 4);
        assert_eq!(a.pivots, b.pivots);
    }

    #[test]
    fn bucket_of_partitions_domain() {
        let tl = tl();
        let input = tl.far_from_vec((0u64..10_000).collect::<Vec<_>>());
        let s = draw_pivots(&tl, &input, 32, 3, 2);
        assert_eq!(s.bucket_of(&0), 0);
        assert_eq!(s.bucket_of(&u64::MAX), s.pivots.len());
        // bucket_of is monotone.
        let b1 = s.bucket_of(&100);
        let b2 = s.bucket_of(&5000);
        assert!(b1 <= b2);
        // An element equal to pivot i lands in bucket i (range (prev, p_i]).
        if let Some(&p) = s.pivots.first() {
            assert_eq!(s.bucket_of(&p), 0);
        }
    }

    #[test]
    fn empty_input_or_zero_m() {
        let tl = tl();
        let empty = tl.far_from_vec(Vec::<u64>::new());
        assert_eq!(draw_pivots(&tl, &empty, 16, 0, 1).pivots.len(), 0);
        let input = tl.far_from_vec(vec![1u64, 2, 3]);
        assert_eq!(draw_pivots(&tl, &input, 0, 0, 1).pivots.len(), 0);
    }
}
