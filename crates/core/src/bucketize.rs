//! Bucket-boundary extraction (the `BucketPos` computation of §IV-D).
//!
//! Given a *sorted* chunk and the sorted pivot set `X`, compute for every
//! bucket the index of its first element in the chunk. NMsort records this
//! metadata instead of eagerly scattering bucket elements to DRAM — the
//! innovation that avoids the small-transfer penalty ("Without this
//! innovation, we were unable to exploit the scratchpad effectively").
//!
//! The extraction is the paper's "multithreaded algorithm that determines
//! bucket boundaries in a sorted list": pivots are split into contiguous
//! groups, each lane binary-searches its group's starting position (a few
//! random block reads) and then scans forward linearly (sequential reads).

use crate::extsort::RegionLevel;
use crate::{ceil_lg, SortElem};
use tlmm_scratchpad::trace::{current_lane, with_lane};
use tlmm_scratchpad::{Dir, TwoLevel};

/// Positions of bucket starts in a sorted chunk.
///
/// `positions.len() == pivots.len() + 2`: `positions[0] == 0`,
/// `positions[i]` for `1 ≤ i ≤ m` is the first index holding an element
/// `> pivots[i-1]`, and `positions[m+1] == chunk.len()`. Bucket `i` is
/// `chunk[positions[i]..positions[i+1]]`.
pub type BucketPositions = Vec<u64>;

/// Compute bucket positions for one sorted chunk resident at `level`.
pub fn bucket_positions<T: SortElem>(
    tl: &TwoLevel,
    level: RegionLevel,
    sorted: &[T],
    pivots: &[T],
    lanes: usize,
    threads: usize,
) -> BucketPositions {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "chunk not sorted");
    debug_assert!(
        pivots.windows(2).all(|w| w[0] < w[1]),
        "pivots not sorted/unique"
    );
    let m = pivots.len();
    let n = sorted.len();
    let elem = std::mem::size_of::<T>() as u64;
    if m == 0 {
        return vec![0, n as u64];
    }
    let lanes = lanes.max(1);
    let per_lane = m.div_ceil(lanes);
    let base = current_lane();

    let work = |(g, group): (usize, &[T])| -> Vec<u64> {
        with_lane(base + g % lanes, || {
            // Jump to the group's first boundary with a binary search:
            // lg(n) random reads at `level`.
            let first = group[0];
            let mut idx = crate::kernels::simd::partition_point_le(sorted, &first);
            let probes = ceil_lg(n);
            match level {
                RegionLevel::Near => tl.charge_near_random(Dir::Read, probes, probes * elem),
                RegionLevel::Far => tl.charge_far_random(Dir::Read, probes, probes * elem),
            }
            tl.charge_compute(probes);

            // Walk forward for the remaining boundaries in the group. The
            // scan is sequential; we charge the bytes actually inspected.
            let scan_start = idx;
            let mut out = Vec::with_capacity(group.len());
            out.push(idx as u64);
            for p in &group[1..] {
                // Sequential boundary scan; the SIMD kernel inspects the
                // same elements a scalar walk would, so the charged scan
                // length below is unchanged by dispatch.
                idx += crate::kernels::simd::count_le(&sorted[idx..], p);
                out.push(idx as u64);
            }
            let scanned = (idx - scan_start) as u64;
            let bytes = scanned * elem;
            match level {
                RegionLevel::Near => tl.charge_near_io(Dir::Read, bytes),
                RegionLevel::Far => tl.charge_far_io(Dir::Read, bytes),
            }
            tl.charge_compute(scanned + group.len() as u64);
            out
        })
    };

    let groups: Vec<&[T]> = pivots.chunks(per_lane).collect();
    let boundary_lists: Vec<Vec<u64>> = if threads > 1 {
        crate::pool::map_indexed(threads, groups, |g, group| work((g, group)))
    } else {
        groups.iter().copied().enumerate().map(work).collect()
    };

    let mut positions = Vec::with_capacity(m + 2);
    positions.push(0);
    for list in boundary_lists {
        positions.extend(list);
    }
    positions.push(n as u64);
    positions
}

/// Add one chunk's bucket sizes into the global `BucketTot` array (which
/// lives in the scratchpad for the entire run). Charges a near read+write
/// of the totals, striped across the `lanes` that update disjoint ranges.
pub fn accumulate_totals(
    tl: &TwoLevel,
    totals: &mut [u64],
    positions: &BucketPositions,
    lanes: usize,
) {
    assert_eq!(
        totals.len() + 1,
        positions.len(),
        "totals/positions mismatch"
    );
    for (i, t) in totals.iter_mut().enumerate() {
        let size = positions[i + 1] - positions[i];
        *t += size;
    }
    // Batched: one atomic flush per non-empty log2 bucket instead of three
    // atomics per bucket-size sample (this loop runs per chunk).
    tlmm_telemetry::histogram!("core.bucketize.bucket_elems")
        .record_iter((0..totals.len()).map(|i| positions[i + 1] - positions[i]));
    let lanes = lanes.max(1);
    let per = totals.len().div_ceil(lanes).max(1);
    let base = current_lane();
    let mut at = 0usize;
    let mut lane = 0usize;
    while at < totals.len() {
        let take = per.min(totals.len() - at);
        with_lane(base + lane, || {
            let bytes = (take * 8) as u64;
            tl.charge_near_io(Dir::Read, bytes);
            tl.charge_near_io(Dir::Write, bytes);
            tl.charge_compute(take as u64);
        });
        at += take;
        lane = (lane + 1) % lanes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn brute_positions(sorted: &[u64], pivots: &[u64]) -> Vec<u64> {
        let mut pos = vec![0u64];
        for p in pivots {
            pos.push(sorted.partition_point(|x| x <= p) as u64);
        }
        pos.push(sorted.len() as u64);
        pos
    }

    #[test]
    fn matches_brute_force() {
        let tl = tl();
        let sorted: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let pivots = vec![10, 100, 101, 102, 2000, 2997];
        for lanes in [1, 2, 3, 8] {
            let got = bucket_positions(&tl, RegionLevel::Near, &sorted, &pivots, lanes, 1);
            assert_eq!(got, brute_positions(&sorted, &pivots), "lanes={lanes}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let tl = tl();
        let sorted: Vec<u64> = (0..10_000).map(|i| i / 3).collect();
        let pivots: Vec<u64> = (0..64).map(|i| i * 50).collect();
        let a = bucket_positions(&tl, RegionLevel::Near, &sorted, &pivots, 8, 4);
        let b = bucket_positions(&tl, RegionLevel::Near, &sorted, &pivots, 8, 1);
        assert_eq!(a, b);
        assert_eq!(a, brute_positions(&sorted, &pivots));
    }

    #[test]
    fn positions_partition_the_chunk() {
        let tl = tl();
        let sorted: Vec<u64> = vec![5; 100]; // all equal
        let pivots = vec![1, 5, 9];
        let pos = bucket_positions(&tl, RegionLevel::Near, &sorted, &pivots, 4, 1);
        assert_eq!(pos, vec![0, 0, 100, 100, 100]);
        // Elements equal to pivot 5 land in bucket 1 ((1, 5]).
    }

    #[test]
    fn empty_chunk_and_empty_pivots() {
        let tl = tl();
        let pos = bucket_positions::<u64>(&tl, RegionLevel::Near, &[], &[1, 2], 2, 1);
        assert_eq!(pos, vec![0, 0, 0, 0]);
        let sorted = vec![1u64, 2, 3];
        let pos = bucket_positions(&tl, RegionLevel::Near, &sorted, &[], 2, 1);
        assert_eq!(pos, vec![0, 3]);
    }

    #[test]
    fn pivots_outside_range() {
        let tl = tl();
        let sorted: Vec<u64> = (100..200).collect();
        let pos = bucket_positions(&tl, RegionLevel::Near, &sorted, &[1, 2, 3], 1, 1);
        assert_eq!(pos, vec![0, 0, 0, 0, 100]);
        let pos = bucket_positions(&tl, RegionLevel::Near, &sorted, &[500, 600], 1, 1);
        assert_eq!(pos, vec![0, 100, 100, 100]);
    }

    #[test]
    fn accumulate_totals_sums_sizes() {
        let tl = tl();
        let mut totals = vec![0u64; 3];
        accumulate_totals(&tl, &mut totals, &vec![0, 10, 10, 25], 2);
        accumulate_totals(&tl, &mut totals, &vec![0, 5, 20, 30], 2);
        assert_eq!(totals, vec![15, 15, 25]);
        assert!(tl.ledger().snapshot().near_bytes > 0);
    }

    #[test]
    fn charges_scale_with_scan_not_with_n_times_m() {
        // The merge-scan extraction touches each chunk element about once in
        // total, so near traffic should be O(n + lanes·lg n) elements, far
        // below m·lg(n) random probes.
        let tl = tl();
        let n = 100_000usize;
        let sorted: Vec<u64> = (0..n as u64).collect();
        let pivots: Vec<u64> = (1..1000).map(|i| i * 100).collect();
        bucket_positions(&tl, RegionLevel::Near, &sorted, &pivots, 4, 1);
        let s = tl.ledger().snapshot();
        let elem = 8u64;
        assert!(
            s.near_bytes <= (n as u64 + 4 * 64) * elem,
            "near bytes {} too large",
            s.near_bytes
        );
    }
}
