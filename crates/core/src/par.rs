//! Striped, charged bulk copies between memory levels.
//!
//! Moving a chunk between DRAM and the scratchpad is bandwidth work shared
//! by all cores: each of the `lanes` virtual lanes streams a contiguous
//! stripe. These helpers perform the copy (fanning out over the caller's
//! `threads` host workers via [`crate::pool`]) and charge each stripe to
//! its lane, so the phase trace shows the transfer as parallel — which is
//! how the flow simulator can apply the full channel bandwidth to it.

use crate::extsort::RegionLevel;
use crate::SortElem;
use std::ops::Range;
use tlmm_scratchpad::trace::{current_lane, with_lane};
use tlmm_scratchpad::{Dir, TwoLevel};

/// Charge an IO volume split evenly across lanes — the attribution for
/// cooperative streaming operations whose real execution interleaves lanes
/// finely (bulk transfers, shared merge streams).
///
/// Lane ids are *offset by the ambient lane*: an operation running "on"
/// lane 5 with `lanes = 1` charges lane 5, not lane 0, so nested
/// single-lane work (e.g. one bucket of a parallel recursion) stays on its
/// assigned lane.
///
/// Under an installed deterministic executor the stripes are *issued in a
/// seeded-permutation order* (schedule fuzzing): each stripe keeps its lane
/// (attribution is positional, not temporal), so per-lane trace volumes and
/// the ledger are invariant under the permutation — only the arbitration
/// timeline (slot waits) moves.
pub fn charge_io_striped(tl: &TwoLevel, level: RegionLevel, dir: Dir, bytes: u64, lanes: usize) {
    let base = current_lane();
    let charge_one = |i: usize, r: &Range<usize>| {
        with_lane(base + i, || match level {
            RegionLevel::Near => tl.charge_near_io(dir, r.len() as u64),
            RegionLevel::Far => tl.charge_far_io(dir, r.len() as u64),
        })
    };
    match tl.executor().filter(|e| e.is_deterministic()) {
        Some(ex) => {
            let rs: Vec<Range<usize>> = striped_ranges(bytes as usize, lanes).collect();
            for i in ex.permutation(rs.len()) {
                charge_one(i, &rs[i]);
            }
        }
        None => {
            for (i, r) in striped_ranges(bytes as usize, lanes).enumerate() {
                charge_one(i, &r);
            }
        }
    }
}

/// Charge compute split evenly across lanes (ambient-lane offset like
/// [`charge_io_striped`]). Compute never touches transfer slots, so there
/// is nothing to arbitrate or permute.
pub fn charge_compute_striped(tl: &TwoLevel, ops: u64, lanes: usize) {
    let base = current_lane();
    for (i, r) in striped_ranges(ops as usize, lanes).enumerate() {
        with_lane(base + i, || tl.charge_compute(r.len() as u64));
    }
}

/// Endpoint pair of a charged copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyKind {
    /// DRAM → scratchpad (far read + near write).
    FarToNear,
    /// Scratchpad → DRAM (near read + far write).
    NearToFar,
    /// DRAM → DRAM (far read + far write).
    FarToFar,
    /// Scratchpad → scratchpad (near read + near write).
    NearToNear,
}

/// Split `0..len` into at most `lanes` contiguous near-equal stripes.
///
/// Returns a lazy iterator so per-charge callers ([`charge_io_striped`],
/// [`charge_compute_striped`]) stay allocation-free on the hot path — these
/// run once per transfer in every merge round and used to collect a `Vec`
/// each time. The iterator is `Clone + ExactSizeIterator`, so callers that
/// genuinely need a materialized list (e.g. pool fan-out) can collect it
/// themselves.
pub fn striped_ranges(
    len: usize,
    lanes: usize,
) -> impl ExactSizeIterator<Item = Range<usize>> + Clone {
    let lanes = lanes.max(1);
    // `per` for the empty case is arbitrary; `count` is 0 so nothing yields.
    let per = if len == 0 { 1 } else { len.div_ceil(lanes) };
    let count = len.div_ceil(per);
    (0..count).map(move |i| i * per..((i + 1) * per).min(len))
}

fn charge_stripe<T>(tl: &TwoLevel, kind: CopyKind, elems: usize) {
    let bytes = (elems * std::mem::size_of::<T>()) as u64;
    match kind {
        CopyKind::FarToNear => {
            tl.charge_far_io(Dir::Read, bytes);
            tl.charge_near_io(Dir::Write, bytes);
        }
        CopyKind::NearToFar => {
            tl.charge_near_io(Dir::Read, bytes);
            tl.charge_far_io(Dir::Write, bytes);
        }
        CopyKind::FarToFar => {
            tl.charge_far_io(Dir::Read, bytes);
            tl.charge_far_io(Dir::Write, bytes);
        }
        CopyKind::NearToNear => {
            tl.charge_near_io(Dir::Read, bytes);
            tl.charge_near_io(Dir::Write, bytes);
        }
    }
}

/// Copy `src` into `dst` (equal lengths) in lane stripes, charging both
/// endpoints of `kind`. `threads` bounds the host fan-out (1 = inline).
pub fn charged_copy<T: SortElem>(
    tl: &TwoLevel,
    kind: CopyKind,
    src: &[T],
    dst: &mut [T],
    lanes: usize,
    threads: usize,
) {
    assert_eq!(src.len(), dst.len(), "charged_copy length mismatch");
    if src.is_empty() {
        return;
    }
    let base = current_lane();
    let work = |(i, (r, d)): (usize, (Range<usize>, &mut [T]))| {
        with_lane(base + i, || {
            d.copy_from_slice(&src[r.clone()]);
            charge_stripe::<T>(tl, kind, r.len());
        })
    };
    if let Some(ex) = tl.executor() {
        // An installed executor owns the stage schedule: deterministic mode
        // runs the stripes sequentially in a seeded-permutation order, host
        // mode fans them out to its worker pool (contending for transfer
        // slots either way). Lane attribution stays positional (base + i),
        // so the trace is permutation-invariant.
        let ranges: Vec<Range<usize>> = striped_ranges(src.len(), lanes).collect();
        let mut dst_slices: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
        let mut rest = dst;
        for r in &ranges {
            let (a, b) = rest.split_at_mut(r.len());
            dst_slices.push(a);
            rest = b;
        }
        let work = &work;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .into_iter()
            .zip(dst_slices)
            .enumerate()
            .map(|(i, (r, d))| Box::new(move || work((i, (r, d)))) as Box<dyn FnOnce() + Send>)
            .collect();
        ex.run_tasks(tasks);
        return;
    }
    if threads > 1 {
        // The pool needs materialized stripes to fan out; this path is the
        // thread-spawning one, so a couple of small Vecs are in the noise.
        let ranges: Vec<Range<usize>> = striped_ranges(src.len(), lanes).collect();
        let mut dst_slices: Vec<&mut [T]> = Vec::with_capacity(ranges.len());
        let mut rest = dst;
        for r in &ranges {
            let (a, b) = rest.split_at_mut(r.len());
            dst_slices.push(a);
            rest = b;
        }
        let items: Vec<(Range<usize>, &mut [T])> = ranges.into_iter().zip(dst_slices).collect();
        crate::pool::run_indexed(threads, items, |i, rd| work((i, rd)));
    } else {
        // Sequential path: walk the stripe iterator and carve `dst` as we
        // go — no allocation at all.
        let mut rest = dst;
        for (i, r) in striped_ranges(src.len(), lanes).enumerate() {
            let (d, b) = rest.split_at_mut(r.len());
            rest = b;
            work((i, (r, d)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    #[test]
    fn striped_ranges_cover_exactly() {
        for (len, lanes) in [(0, 4), (1, 4), (10, 3), (100, 7), (4096, 16), (5, 100)] {
            let rs: Vec<_> = striped_ranges(len, lanes).collect();
            assert_eq!(striped_ranges(len, lanes).len(), rs.len());
            assert!(rs.len() <= lanes.max(1));
            let mut cursor = 0;
            for r in &rs {
                assert_eq!(r.start, cursor);
                assert!(!r.is_empty());
                cursor = r.end;
            }
            assert_eq!(cursor, len);
        }
    }

    #[test]
    fn copy_moves_data_and_charges() {
        let tl = tl();
        let src: Vec<u64> = (0..10_000).collect();
        let mut dst = vec![0u64; 10_000];
        charged_copy(&tl, CopyKind::FarToNear, &src, &mut dst, 8, 1);
        assert_eq!(src, dst);
        let s = tl.ledger().snapshot();
        assert_eq!(s.far_bytes, 80_000);
        assert_eq!(s.near_bytes, 80_000);
        // 8 stripes of 10 000 B each, ⌈10000/64⌉ = 157 blocks per stripe.
        assert_eq!(s.far_read_blocks, 8 * 157);
    }

    #[test]
    fn parallel_copy_matches_sequential_charges() {
        let run = |threads: usize| {
            let tl = tl();
            let src: Vec<u32> = (0..50_000).collect();
            let mut dst = vec![0u32; 50_000];
            charged_copy(&tl, CopyKind::NearToFar, &src, &mut dst, 8, threads);
            assert_eq!(src, dst);
            tl.ledger().snapshot()
        };
        let a = run(4);
        let b = run(1);
        assert_eq!(a, b);
    }

    #[test]
    fn all_copy_kinds_charge_correct_levels() {
        let cases = [
            (CopyKind::FarToNear, true, true),
            (CopyKind::NearToFar, true, true),
            (CopyKind::FarToFar, true, false),
            (CopyKind::NearToNear, false, true),
        ];
        for (kind, far, near) in cases {
            let tl = tl();
            let src = vec![1u8; 1000];
            let mut dst = vec![0u8; 1000];
            charged_copy(&tl, kind, &src, &mut dst, 4, 1);
            let s = tl.ledger().snapshot();
            assert_eq!(s.far_bytes > 0, far, "{kind:?}");
            assert_eq!(s.near_bytes > 0, near, "{kind:?}");
        }
    }

    #[test]
    fn lanes_receive_stripes() {
        let tl = tl();
        tl.begin_phase("copy");
        let src = vec![0u64; 8192];
        let mut dst = vec![0u64; 8192];
        charged_copy(&tl, CopyKind::FarToNear, &src, &mut dst, 8, 4);
        tl.end_phase();
        let t = tl.take_trace();
        assert_eq!(t.phases[0].active_lanes(), 8);
        // Stripes are near-equal.
        let works = &t.phases[0].lanes;
        let max = works.iter().map(|w| w.far_read_bytes).max().unwrap();
        let min = works.iter().map(|w| w.far_read_bytes).min().unwrap();
        assert!(max - min <= 8 * 1024 / 8);
    }
}
