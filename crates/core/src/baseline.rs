//! The single-level baseline: GNU-parallel-class multiway mergesort.
//!
//! Table I compares NMsort against "the GNU parallel C++ library's multi-way
//! merge sort (originally from the MCSTL)", running entirely out of
//! conventional DRAM. This module is that comparator: `p` simulated threads
//! each sort a contiguous run with an introsort, then the sorted runs are
//! multiway-merged (single pass when the cache can hold one input buffer per
//! run, as on the Fig. 4 machine).
//!
//! Cost accounting models what the SST simulation measures: an introsort's
//! partitioning passes stream the run through DRAM once per level *above*
//! the point where the subproblem fits the per-thread cache share, plus one
//! final in-cache pass; the merge streams everything once more per round.
//! The scratchpad is never touched — "GNU Sort" has zero scratchpad
//! accesses in Table I by construction.

use crate::extsort::{merge_rounds, RegionLevel};
use crate::{ceil_lg, SortElem, SortError};
use tlmm_scratchpad::trace::with_lane;
use tlmm_scratchpad::{Dir, FarArray, TwoLevel};

/// Tuning knobs for [`baseline_sort`].
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Simulated threads `p` (= number of initial runs). The paper's machine
    /// has 256.
    pub sim_lanes: usize,
    /// Host worker threads sorting runs and merging groups (1 = inline).
    pub threads: usize,
    /// Per-thread effective cache share in bytes. Default: `Z / sim_lanes`.
    pub cache_per_lane_bytes: Option<u64>,
    /// Merge fan-in. Default: one `B`-sized input buffer per half cache,
    /// clamped to the run count (single-pass merge on big caches, like the
    /// MCSTL merge).
    pub fanout: Option<usize>,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            sim_lanes: 8,
            threads: crate::pool::host_threads(),
            cache_per_lane_bytes: None,
            fanout: None,
        }
    }
}

/// Result of a [`baseline_sort`] run.
#[derive(Debug)]
pub struct BaselineReport<T> {
    /// Sorted output (far memory).
    pub output: FarArray<T>,
    /// Initial sorted runs (= simulated threads).
    pub runs: usize,
    /// Introsort partitioning passes charged per run (levels above cache).
    pub partition_passes: u32,
    /// Multiway merge rounds.
    pub merge_rounds: u32,
}

/// Sort `input` with the DRAM-only parallel multiway mergesort.
pub fn baseline_sort<T: SortElem>(
    tl: &TwoLevel,
    input: FarArray<T>,
    cfg: &BaselineConfig,
) -> Result<BaselineReport<T>, SortError> {
    let n = input.len();
    let p = cfg.sim_lanes.max(1);
    crate::pool::validate_threads(cfg.threads)?;
    let elem = std::mem::size_of::<T>() as u64;
    let mut data = input;
    if n <= 1 {
        return Ok(BaselineReport {
            output: data,
            runs: n,
            partition_passes: 0,
            merge_rounds: 0,
        });
    }
    let _run_span = tlmm_telemetry::span!("baseline_sort");
    let run_elems = n.div_ceil(p);
    let zc_bytes = cfg
        .cache_per_lane_bytes
        .unwrap_or_else(|| (tl.params().cache_bytes / p as u64).max(1));
    let zc_elems = (zc_bytes / elem.max(1)).max(1) as usize;
    // Introsort levels whose subproblems exceed the thread's cache share:
    // each streams the whole run through DRAM once (read + write), plus one
    // final pass for the in-cache base sorts.
    let depth_above = if run_elems > zc_elems {
        ceil_lg(run_elems.div_ceil(zc_elems)) as u32
    } else {
        0
    };
    let passes = depth_above + 1;

    // ---- Run sorting ----------------------------------------------------
    // Phase boundary: cooperative cancellation / deadline check.
    tl.checkpoint()?;
    tl.begin_phase("baseline.run_sort");
    let sort_run = |(r, run): (usize, &mut [T])| {
        with_lane(r % p, || {
            let bytes = run.len() as u64 * elem;
            for _ in 0..passes {
                tl.charge_far_io(Dir::Read, bytes);
                tl.charge_far_io(Dir::Write, bytes);
            }
            crate::kernels::sort_kernel(run);
            tl.charge_compute(run.len() as u64 * ceil_lg(run.len()));
        })
    };
    if cfg.threads > 1 {
        let runs: Vec<&mut [T]> = data
            .as_mut_slice_uncharged()
            .chunks_mut(run_elems)
            .collect();
        crate::pool::run_indexed(cfg.threads, runs, |r, run| sort_run((r, run)));
    } else {
        data.as_mut_slice_uncharged()
            .chunks_mut(run_elems)
            .enumerate()
            .for_each(sort_run);
    }
    let n_runs = n.div_ceil(run_elems);

    // ---- Multiway merge ---------------------------------------------------
    tl.checkpoint()?;
    tl.begin_phase("baseline.merge");
    let mut scratch = tl.far_alloc::<T>(n);
    let fanout = cfg.fanout.unwrap_or_else(|| {
        ((tl.params().cache_bytes / (2 * tl.params().block_bytes)) as usize).clamp(2, 4096)
    });
    let bounds: Vec<usize> = (0..=n_runs).map(|i| (i * run_elems).min(n)).collect();
    let (in_scratch, rounds, _cmps) = merge_rounds(
        tl,
        RegionLevel::Far,
        data.as_mut_slice_uncharged(),
        scratch.as_mut_slice_uncharged(),
        bounds,
        fanout,
        p,
        cfg.threads,
    );
    tl.end_phase();

    let output = if in_scratch { scratch } else { data };
    Ok(BaselineReport {
        output,
        runs: n_runs,
        partition_passes: passes,
        merge_rounds: rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn sorts_correctly() {
        let tl = tl();
        for n in [0usize, 1, 2, 100, 10_000, 200_000] {
            let v = random_vec(n, n as u64);
            let mut expect = v.clone();
            expect.sort_unstable();
            let r = baseline_sort(&tl, tl.far_from_vec(v), &BaselineConfig::default()).unwrap();
            assert_eq!(r.output.as_slice_uncharged(), expect.as_slice(), "n={n}");
        }
    }

    #[test]
    fn never_touches_scratchpad() {
        let tl = tl();
        baseline_sort(
            &tl,
            tl.far_from_vec(random_vec(100_000, 3)),
            &BaselineConfig::default(),
        )
        .unwrap();
        let s = tl.ledger().snapshot();
        assert_eq!(s.near_blocks(), 0, "GNU sort has zero scratchpad accesses");
        assert_eq!(s.near_bytes, 0);
        assert!(s.far_bytes > 0);
    }

    #[test]
    fn far_traffic_exceeds_nmsorts_four_passes() {
        // On a machine where runs exceed the per-lane cache, the baseline
        // streams the data more times than NMsort's ~4 far passes.
        let tl = tl();
        let n = 200_000usize;
        baseline_sort(
            &tl,
            tl.far_from_vec(random_vec(n, 4)),
            &BaselineConfig {
                sim_lanes: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let s = tl.ledger().snapshot();
        let data_bytes = (n * 8) as u64;
        assert!(
            s.far_bytes > 4 * data_bytes,
            "far bytes {} vs 4 passes {}",
            s.far_bytes,
            4 * data_bytes
        );
    }

    #[test]
    fn single_merge_round_when_cache_allows() {
        let tl = tl();
        let r = baseline_sort(
            &tl,
            tl.far_from_vec(random_vec(50_000, 5)),
            &BaselineConfig {
                sim_lanes: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.runs, 8);
        assert_eq!(r.merge_rounds, 1, "Fig.4-class caches merge in one pass");
    }

    #[test]
    fn multi_round_merge_with_small_fanout() {
        let tl = tl();
        let v = random_vec(10_000, 6);
        let mut expect = v.clone();
        expect.sort_unstable();
        let r = baseline_sort(
            &tl,
            tl.far_from_vec(v),
            &BaselineConfig {
                sim_lanes: 16,
                fanout: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.merge_rounds, 4); // 16 -> 8 -> 4 -> 2 -> 1
        assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
    }

    #[test]
    fn partition_passes_grow_when_cache_shrinks() {
        let tl = tl();
        let mk = |cache: u64| {
            let r = baseline_sort(
                &tl,
                tl.far_from_vec(random_vec(100_000, 7)),
                &BaselineConfig {
                    sim_lanes: 4,
                    cache_per_lane_bytes: Some(cache),
                    ..Default::default()
                },
            )
            .unwrap();
            r.partition_passes
        };
        let big = mk(10 << 20);
        let small = mk(16 << 10);
        assert_eq!(big, 1, "run fits cache: single pass");
        assert!(small > big, "small={small} big={big}");
    }

    #[test]
    fn equal_keys_and_presorted() {
        let tl = tl();
        for v in [vec![5u64; 50_000], (0..50_000u64).collect::<Vec<_>>()] {
            let mut expect = v.clone();
            expect.sort_unstable();
            let r = baseline_sort(&tl, tl.far_from_vec(v), &BaselineConfig::default()).unwrap();
            assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
        }
    }
}
