//! Scratchpad-aware k-selection (order statistics).
//!
//! The paper's title promises *multi-threaded algorithmic primitives*; the
//! sorting machinery generalizes directly to selection. Finding the rank-k
//! element needs the same ingredients as one bucketizing scan — a resident
//! pivot sample and a streaming pass counting bucket populations — but never
//! materializes the buckets: each round shrinks the candidate range by the
//! sample's resolution, and once the surviving candidates fit in the
//! scratchpad they are sorted there (Corollary 3) to finish.
//!
//! Cost: `O(N/B)` far blocks for the first scan, geometrically decreasing
//! scans afterwards (candidates shrink ~`1/m` per round whp), plus one
//! in-scratchpad sort — strictly cheaper than a full sort, and the
//! scratchpad's ρ× bandwidth accelerates every counting scan's in-near
//! work exactly as in the sort.

use crate::extsort::{external_sort, ExtSortConfig, RegionLevel};
use crate::par::{charge_compute_striped, charge_io_striped};
use crate::sample::draw_pivots;
use crate::{SortElem, SortError};
use tlmm_scratchpad::{Dir, FarArray, TwoLevel};

/// Tuning knobs for [`select_kth`].
#[derive(Debug, Clone)]
pub struct SelectConfig {
    /// Virtual lanes cooperating on the scans.
    pub lanes: usize,
    /// RNG seed for pivot sampling.
    pub seed: u64,
    /// Pivots per round (default `Θ(M/B)` capped).
    pub n_pivots: Option<usize>,
    /// Safety cap on rounds (duplicate-heavy inputs stop shrinking; the
    /// equal-to-pivot band is then resolved directly).
    pub max_rounds: u32,
}

impl Default for SelectConfig {
    fn default() -> Self {
        Self {
            lanes: 8,
            seed: 0x5E1E_C7ED,
            n_pivots: None,
            max_rounds: 48,
        }
    }
}

/// Statistics from a [`select_kth`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelectReport {
    /// Counting scans performed.
    pub rounds: u32,
    /// Candidates remaining when the in-scratchpad finish kicked in.
    pub final_candidates: usize,
}

/// Find the element of rank `k` (0-based, i.e. the `(k+1)`-smallest) in
/// `input` without sorting it. Returns the value and run statistics.
pub fn select_kth<T: SortElem>(
    tl: &TwoLevel,
    input: &FarArray<T>,
    k: usize,
    cfg: &SelectConfig,
) -> Result<(T, SelectReport), SortError> {
    let n = input.len();
    assert!(k < n, "rank {k} out of range for {n} elements");
    let elem = std::mem::size_of::<T>() as u64;
    let lanes = cfg.lanes.max(1);
    let cap = (tl.params().scratchpad_capacity_elems(elem as usize) * 2 / 5).max(2);
    let mut report = SelectReport::default();

    // Candidate set: starts as the whole (conceptual) array; represented as
    // value bounds plus the actual surviving values once they shrink.
    let mut lo: Option<T> = None; // exclusive lower bound
    let mut hi: Option<T> = None; // inclusive upper bound
    let mut rank = k; // rank within the candidate band
    let data = input.as_slice_uncharged();
    let mut candidates: Vec<T> = Vec::new();
    let mut have_candidates = false;

    for _ in 0..cfg.max_rounds {
        // Materialized candidates that fit the scratchpad: finish there.
        if have_candidates && candidates.len() <= cap {
            break;
        }
        report.rounds += 1;

        // Sample pivots from the full array (cheap, already resident logic)
        // and keep only those inside the candidate band.
        let m = cfg
            .n_pivots
            .unwrap_or_else(|| ((tl.params().scratchpad_blocks() / 4) as usize).clamp(16, 4096));
        let sample = draw_pivots(tl, input, m, cfg.seed ^ report.rounds as u64, lanes);
        let mut pivots: Vec<T> = sample
            .pivots
            .into_iter()
            .filter(|p| lo.map(|l| *p > l).unwrap_or(true) && hi.map(|h| *p <= h).unwrap_or(true))
            .collect();
        pivots.dedup();
        if pivots.is_empty() {
            // The band has a single value (or the sample missed): resolve
            // directly by materializing the band.
            break;
        }

        // One counting scan: bucket populations within the band.
        let mut counts = vec![0u64; pivots.len() + 1];
        for &v in data {
            if lo.map(|l| v <= l).unwrap_or(false) || hi.map(|h| v > h).unwrap_or(false) {
                continue;
            }
            let b = pivots.partition_point(|p| *p < v);
            counts[b] += 1;
        }
        charge_io_striped(tl, RegionLevel::Far, Dir::Read, n as u64 * elem, lanes);
        charge_compute_striped(tl, n as u64 * crate::ceil_lg(pivots.len()), lanes);

        // Locate the bucket holding the target rank.
        let mut acc = 0u64;
        let mut bucket = counts.len() - 1;
        for (b, &c) in counts.iter().enumerate() {
            if acc + c > rank as u64 {
                bucket = b;
                break;
            }
            acc += c;
        }
        rank -= acc as usize;
        let new_lo = if bucket == 0 {
            lo
        } else {
            Some(pivots[bucket - 1])
        };
        let new_hi = if bucket == pivots.len() {
            hi
        } else {
            Some(pivots[bucket])
        };
        // Detect a non-shrinking band (heavy duplicates): resolve directly.
        if new_lo == lo && new_hi == hi {
            break;
        }
        lo = new_lo;
        hi = new_hi;

        // Materialize the band if it is small enough to be worth it: another
        // streaming pass gathering survivors into the scratchpad.
        let band_size: u64 = counts[bucket];
        if (band_size as usize) <= cap {
            candidates = data
                .iter()
                .copied()
                .filter(|v| {
                    lo.map(|l| *v > l).unwrap_or(true) && hi.map(|h| *v <= h).unwrap_or(true)
                })
                .collect();
            have_candidates = true;
            charge_io_striped(tl, RegionLevel::Far, Dir::Read, n as u64 * elem, lanes);
            charge_io_striped(
                tl,
                RegionLevel::Near,
                Dir::Write,
                candidates.len() as u64 * elem,
                lanes,
            );
            break;
        }
    }

    if !have_candidates {
        // Fall back to materializing whatever band we narrowed to.
        candidates = data
            .iter()
            .copied()
            .filter(|v| lo.map(|l| *v > l).unwrap_or(true) && hi.map(|h| *v <= h).unwrap_or(true))
            .collect();
        charge_io_striped(tl, RegionLevel::Far, Dir::Read, n as u64 * elem, lanes);
        charge_io_striped(
            tl,
            RegionLevel::Near,
            Dir::Write,
            candidates.len() as u64 * elem,
            lanes,
        );
    }
    report.final_candidates = candidates.len();

    // Finish in the scratchpad (Corollary 3) — or in far memory if the band
    // refused to shrink below M (massive duplication).
    let level = if candidates.len() <= cap {
        RegionLevel::Near
    } else {
        RegionLevel::Far
    };
    let mut scratch = vec![T::default(); candidates.len()];
    let out = external_sort(
        tl,
        level,
        &mut candidates,
        &mut scratch,
        &ExtSortConfig {
            lanes,
            ..Default::default()
        },
    );
    let sorted = if out.in_scratch {
        &scratch
    } else {
        &candidates
    };
    Ok((sorted[rank], report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn uniform(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    fn few_distinct(n: usize, k: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..k)).collect()
    }

    fn check(v: Vec<u64>, k: usize) -> SelectReport {
        let tl = tl();
        let mut expect = v.clone();
        expect.sort_unstable();
        let input = tl.far_from_vec(v);
        let (got, report) = select_kth(&tl, &input, k, &SelectConfig::default()).unwrap();
        assert_eq!(got, expect[k], "rank {k}");
        report
    }

    #[test]
    fn selects_medians_and_extremes() {
        let v = uniform(300_000, 1);
        check(v.clone(), 0);
        check(v.clone(), 150_000);
        check(v.clone(), 299_999);
    }

    #[test]
    fn selects_on_duplicate_heavy_input() {
        let v = few_distinct(200_000, 3, 2);
        check(v.clone(), 100);
        check(v, 199_999);
    }

    #[test]
    fn selects_on_all_equal() {
        check(vec![42u64; 100_000], 50_000);
    }

    #[test]
    fn selects_on_sorted_and_reverse() {
        check((0..200_000u64).collect(), 123_456);
        check((0..200_000u64).rev().collect(), 7);
    }

    #[test]
    fn cheaper_than_a_full_sort() {
        let tl1 = tl();
        let v = uniform(400_000, 3);
        let input = tl1.far_from_vec(v.clone());
        select_kth(&tl1, &input, 200_000, &SelectConfig::default()).unwrap();
        let select_blocks = tl1.ledger().snapshot().total_blocks();

        let tl2 = tl();
        let input = tl2.far_from_vec(v);
        crate::nmsort::nmsort(&tl2, input, &crate::nmsort::NmSortConfig::default()).unwrap();
        let sort_blocks = tl2.ledger().snapshot().total_blocks();
        assert!(
            select_blocks < sort_blocks / 2,
            "selection {select_blocks} should be well below sorting {sort_blocks}"
        );
    }

    #[test]
    fn rounds_stay_small_on_random_input() {
        let v = uniform(500_000, 4);
        let r = check(v, 250_000);
        assert!(r.rounds <= 3, "rounds {}", r.rounds);
        assert!(r.final_candidates <= 500_000 / 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_rank() {
        let tl = tl();
        let input = tl.far_from_vec(vec![1u64, 2, 3]);
        let _ = select_kth(&tl, &input, 3, &SelectConfig::default());
    }
}
