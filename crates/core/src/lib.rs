//! Scratchpad-aware multithreaded sorting primitives.
//!
//! This crate is the paper's primary contribution in library form:
//!
//! * [`mod@nmsort`] — **NMsort** (§IV-D), the practical two-phase near-memory
//!   sort: Phase 1 sorts `Θ(M)`-sized chunks inside the scratchpad and
//!   records bucket *metadata* (`BucketPos`, `BucketTot`) instead of eagerly
//!   scattering buckets; Phase 2 streams batches of whole buckets back
//!   through the scratchpad and multiway-merges the sorted chunk segments.
//! * [`seqsort`] — the theoretically optimal sequential scratchpad sample
//!   sort of §III (randomized bucketizing scans, Theorem 6).
//! * [`baseline`] — a GNU-parallel-class multiway mergesort that only uses
//!   far memory: the paper's comparison point ("GNU sort" in Table I).
//! * [`extsort`] — the external multiway mergesort engine both sorts build
//!   on (run formation + loser-tree merge passes with exact transfer
//!   accounting), usable against either memory level.
//! * [`oblivious`] — the cache-*oblivious* opponents: SPMS
//!   (Cole–Ramachandran sample–partition–merge) and SquareSort
//!   (Koucký–Matějka √n-block recursion), whose control flow never reads a
//!   machine parameter; the residency adapter charges their passes to the
//!   correct level.
//! * [`losertree`] — tournament-tree k-way merging (branchless kernel).
//! * [`kernels`] — the host wall-clock kernel layer: MSD hybrid radix run
//!   formation for [`kernels::RadixKey`] types and the pre-kernel reference
//!   implementations used as differential oracles and bench baselines.
//! * [`sample`] — random pivot sampling (§III-A).
//! * [`bucketize`] — bucket-boundary extraction in sorted chunks (the
//!   multithreaded `BucketPos` computation of §IV-D).
//!
//! All algorithms run on a [`tlmm_scratchpad::TwoLevel`] memory and charge
//! every transfer to its ledger and phase trace; the `tlmm-memsim` crate
//! turns those traces into simulated wall-clock time on a configurable
//! machine.
//!
//! # Quickstart
//!
//! ```
//! use tlmm_model::ScratchpadParams;
//! use tlmm_scratchpad::TwoLevel;
//! use tlmm_core::nmsort::{nmsort, NmSortConfig};
//!
//! let params = ScratchpadParams::new(64, 4.0, 1 << 22, 1 << 16).unwrap();
//! let tl = TwoLevel::new(params);
//! let input = tl.far_from_vec((0u64..100_000).rev().collect::<Vec<_>>());
//! let cfg = NmSortConfig::default();
//! let report = nmsort(&tl, input, &cfg).unwrap();
//! assert!(report.output.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
//! ```

pub mod baseline;
pub mod bucketize;
pub mod extsort;
pub mod kernels;
pub mod losertree;
pub mod nmsort;
pub mod oblivious;
pub mod par;
pub mod parsort;
pub mod pmerge;
pub mod pool;
pub mod quicksort;
pub mod sample;
pub mod select;
pub mod seqsort;

pub use baseline::{baseline_sort, BaselineConfig};
pub use kernels::{radix_sort, sort_kernel, RadixKey};
pub use nmsort::{nmsort, ChunkSorter, DegradationStats, NmSortConfig, NmSortReport};
pub use oblivious::{spms_sort, squaresort_sort, ObliviousConfig, ObliviousReport};
pub use parsort::{par_scratchpad_sort, ParSortConfig};
pub use select::{select_kth, SelectConfig};
pub use seqsort::{seq_scratchpad_sort, SeqSortConfig};

/// Bound required of sortable elements throughout the crate.
pub trait SortElem: Copy + Ord + Send + Sync + Default + 'static {}
impl<T: Copy + Ord + Send + Sync + Default + 'static> SortElem for T {}

/// Errors surfaced by the sorting algorithms.
#[derive(Debug)]
pub enum SortError {
    /// The scratchpad runtime rejected an allocation or transfer.
    Memory(tlmm_scratchpad::SpError),
    /// The scratchpad is too small to host even one working chunk plus
    /// bookkeeping for this input (need `M` comfortably above `Z`).
    ScratchpadTooSmall {
        /// Bytes the algorithm needed at minimum.
        needed: u64,
        /// Scratchpad bytes available.
        available: u64,
    },
    /// A caller-supplied configuration value is invalid (e.g.
    /// `ParSortConfig::lanes == 0`). Rejected at the API edge rather than
    /// silently clamped, so misconfigurations fail loudly.
    BadConfig {
        /// What was wrong with the configuration.
        reason: &'static str,
    },
    /// The job's [`tlmm_scratchpad::CancelToken`] tripped at a phase
    /// boundary (explicit cancellation or a charged-unit deadline). All
    /// work charged before the boundary stays charged; scratchpad buffers
    /// are released on unwind, leaving the arena reusable.
    Canceled,
}

impl SortError {
    /// Was this run stopped by cooperative cancellation (vs failing)?
    pub fn is_canceled(&self) -> bool {
        matches!(self, SortError::Canceled)
    }
}

impl From<tlmm_scratchpad::SpError> for SortError {
    fn from(e: tlmm_scratchpad::SpError) -> Self {
        match e {
            tlmm_scratchpad::SpError::Cancelled => SortError::Canceled,
            e => SortError::Memory(e),
        }
    }
}

impl core::fmt::Display for SortError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SortError::Memory(e) => write!(f, "memory error: {e}"),
            SortError::ScratchpadTooSmall { needed, available } => write!(
                f,
                "scratchpad too small: need {needed} B, have {available} B"
            ),
            SortError::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
            SortError::Canceled => f.write_str("job canceled at a phase boundary"),
        }
    }
}

impl std::error::Error for SortError {}

/// `⌈lg₂ n⌉` as a `u64`, with `lg(0) = lg(1) = 1` so compute charges are
/// never zero for nonempty work.
#[inline]
pub(crate) fn ceil_lg(n: usize) -> u64 {
    (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_lg_values() {
        assert_eq!(ceil_lg(0), 1);
        assert_eq!(ceil_lg(1), 1);
        assert_eq!(ceil_lg(2), 1);
        assert_eq!(ceil_lg(3), 2);
        assert_eq!(ceil_lg(4), 2);
        assert_eq!(ceil_lg(5), 3);
        assert_eq!(ceil_lg(1024), 10);
        assert_eq!(ceil_lg(1025), 11);
    }
}
