//! External quicksort — the Corollary 7 alternative for in-scratchpad
//! sorting.
//!
//! §III-A: "Other sorting algorithms could be used, such as quicksort. If ρ
//! is sufficiently large, either sorting algorithm within the scratchpad
//! leads to an optimal algorithm … however, the value of ρ based on current
//! hardware probably is not large enough to make quicksort practically
//! competitive with mergesort."
//!
//! Each partitioning level above the cache threshold streams the data once
//! (read + write), so sorting `x` elements costs `Θ((x/ρB)·lg(x/Z))` near
//! blocks — Corollary 7's bound, which is a `lg(M/Z) / log_{Z/ρB}(M/ρB)`
//! factor worse than the multiway merge unless ρ is large. The ablation
//! harness quantifies exactly that trade-off.

use crate::extsort::RegionLevel;
use crate::par::{charge_compute_striped, charge_io_striped};
use crate::{ceil_lg, SortElem};
use tlmm_scratchpad::{Dir, TwoLevel};

/// Statistics from an [`external_quicksort`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuickSortOutcome {
    /// Partitioning levels that exceeded the cache threshold (each streamed
    /// its segment through the memory once).
    pub partition_levels: u32,
    /// Comparisons charged.
    pub comparisons: u64,
}

/// Median-of-three pivot.
#[inline]
fn pivot_of<T: Ord + Copy>(s: &[T]) -> T {
    let (a, b, c) = (s[0], s[s.len() / 2], s[s.len() - 1]);
    // Median by pairwise max/min.
    let hi = a.max(b);
    let lo = a.min(b);
    c.clamp(lo, hi)
}

/// Three-way (Dutch national flag) partition around `p`; returns the
/// `(lt, gt)` boundaries: `data[..lt] < p`, `data[lt..gt] == p`,
/// `data[gt..] > p`.
fn partition3<T: Ord + Copy>(data: &mut [T], p: T) -> (usize, usize) {
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = data.len();
    while i < gt {
        if data[i] < p {
            data.swap(i, lt);
            lt += 1;
            i += 1;
        } else if data[i] > p {
            gt -= 1;
            data.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

/// Sort `data` (resident at `level`) in place with an external quicksort:
/// segments larger than `cache_elems` pay a streaming partition pass;
/// smaller segments are read once, sorted in cache, and written once.
/// Charges are striped across `lanes`.
pub fn external_quicksort<T: SortElem>(
    tl: &TwoLevel,
    level: RegionLevel,
    data: &mut [T],
    lanes: usize,
) -> QuickSortOutcome {
    let elem = std::mem::size_of::<T>() as u64;
    let cache_elems = {
        let e = std::mem::size_of::<T>().max(1);
        ((tl.params().cache_bytes as usize) / (2 * e * lanes.max(1))).max(64)
    };
    let mut levels = 0u32;
    let mut comparisons = 0u64;

    // Explicit stack of (range, depth); process depth-synchronously so the
    // "levels" statistic matches the analysis (each level streams all
    // still-unsorted data once).
    let mut current: Vec<(usize, usize)> = vec![(0, data.len())];
    let mut depth_guard = 0u32;
    while !current.is_empty() {
        depth_guard += 1;
        let mut next: Vec<(usize, usize)> = Vec::new();
        let mut streamed_bytes = 0u64;
        let mut base_bytes = 0u64;
        let mut level_cmps = 0u64;
        for &(lo, hi) in &current {
            let seg = &mut data[lo..hi];
            let n = seg.len();
            if n <= 1 {
                continue;
            }
            if n <= cache_elems || depth_guard > 96 {
                // Base case: one pass in, in-cache sort, one pass out.
                base_bytes += n as u64 * elem;
                crate::kernels::sort_kernel(seg);
                level_cmps += n as u64 * ceil_lg(n);
                continue;
            }
            // Streaming partition pass.
            streamed_bytes += n as u64 * elem;
            let p = pivot_of(seg);
            let (lt, gt) = partition3(seg, p);
            level_cmps += n as u64;
            next.push((lo, lo + lt));
            next.push((lo + gt, hi));
        }
        if streamed_bytes > 0 {
            levels += 1;
            charge_io_striped(tl, level, Dir::Read, streamed_bytes, lanes);
            charge_io_striped(tl, level, Dir::Write, streamed_bytes, lanes);
        }
        if base_bytes > 0 {
            charge_io_striped(tl, level, Dir::Read, base_bytes, lanes);
            charge_io_striped(tl, level, Dir::Write, base_bytes, lanes);
        }
        charge_compute_striped(tl, level_cmps, lanes);
        comparisons += level_cmps;
        current = next;
    }
    QuickSortOutcome {
        partition_levels: levels,
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tlmm_model::ScratchpadParams;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn sorts_various_inputs() {
        let tl = tl();
        for n in [0usize, 1, 2, 100, 5_000, 60_000] {
            let mut v = random_vec(n, n as u64);
            let mut expect = v.clone();
            expect.sort_unstable();
            external_quicksort(&tl, RegionLevel::Near, &mut v, 4);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        let tl = tl();
        let cases: Vec<Vec<u64>> = vec![
            vec![7; 50_000],
            (0..50_000u64).collect(),
            (0..50_000u64).rev().collect(),
            (0..50_000).map(|i| (i % 3) as u64).collect(),
        ];
        for mut v in cases {
            let mut expect = v.clone();
            expect.sort_unstable();
            external_quicksort(&tl, RegionLevel::Near, &mut v, 4);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn partition_levels_track_lg_n_over_cache() {
        let tl = tl();
        // cache_elems for lanes=1: Z/(2*8) = 1024 elems.
        let mut v = random_vec(64 * 1024, 3);
        let out = external_quicksort(&tl, RegionLevel::Near, &mut v, 1);
        // lg(65536/1024) = 6 ideal levels; median-of-3 needs a few more.
        assert!(
            out.partition_levels >= 6 && out.partition_levels <= 16,
            "levels {}",
            out.partition_levels
        );
    }

    #[test]
    fn traffic_exceeds_mergesort_at_small_rho() {
        // Corollary 7: quicksort's near traffic carries a lg(M/Z) factor the
        // multiway merge replaces with log_{Z/rhoB}(M/rhoB); at small rho the
        // merge should move fewer near blocks.
        let n = 200_000usize;
        let run = |quick: bool| {
            let tl = TwoLevel::new(ScratchpadParams::new(64, 2.0, 16 << 20, 64 << 10).unwrap());
            let mut v = random_vec(n, 5);
            if quick {
                external_quicksort(&tl, RegionLevel::Near, &mut v, 1);
            } else {
                let mut scratch = vec![0u64; n];
                crate::extsort::external_sort(
                    &tl,
                    RegionLevel::Near,
                    &mut v,
                    &mut scratch,
                    &crate::extsort::ExtSortConfig::default(),
                );
            }
            tl.ledger().snapshot().near_blocks()
        };
        let quick = run(true);
        let merge = run(false);
        assert!(
            quick > merge,
            "quicksort {quick} should move more near blocks than mergesort {merge} at rho=2"
        );
    }

    #[test]
    fn charges_are_striped_across_lanes() {
        let tl = tl();
        tl.begin_phase("qs");
        let mut v = random_vec(50_000, 7);
        external_quicksort(&tl, RegionLevel::Near, &mut v, 8);
        tl.end_phase();
        let t = tl.take_trace();
        assert!(t.phases[0].active_lanes() >= 8);
    }

    #[test]
    fn far_level_charges_far_memory() {
        let tl = tl();
        let mut v = random_vec(10_000, 9);
        external_quicksort(&tl, RegionLevel::Far, &mut v, 2);
        let s = tl.ledger().snapshot();
        assert!(s.far_bytes > 0);
        assert_eq!(s.near_bytes, 0);
    }

    #[test]
    fn partition3_invariants() {
        let mut v = vec![5u64, 1, 5, 9, 3, 5, 7, 5];
        let (lt, gt) = partition3(&mut v, 5);
        assert!(v[..lt].iter().all(|&x| x < 5));
        assert!(v[lt..gt].iter().all(|&x| x == 5));
        assert!(v[gt..].iter().all(|&x| x > 5));
        assert_eq!(gt - lt, 4);
    }

    #[test]
    fn pivot_is_median_of_three() {
        assert_eq!(pivot_of(&[3u64, 9, 5]), 5);
        assert_eq!(pivot_of(&[9u64, 3, 5]), 5);
        assert_eq!(pivot_of(&[5u64, 9, 3]), 5);
        assert_eq!(pivot_of(&[1u64, 1, 1]), 1);
    }
}
