//! Loser-tree (tournament) k-way merging.
//!
//! The workhorse of every merge in this crate: the external mergesort's
//! merge passes, NMsort's Phase-2 multiway merge of sorted chunk segments,
//! and the baseline's final merge. A loser tree merges `k` sorted runs with
//! `⌈lg k⌉` comparisons per emitted element, independent of `k` — exactly
//! the constant the multiway merge sort analysis (Theorem 1) assumes.

/// A loser tree over `k` in-memory sorted runs.
///
/// The tree stores, at each internal node, the *loser* of the match played
/// there; the overall winner sits above the root. Replaying a leaf after
/// emitting its head costs one root-to-leaf path of comparisons.
pub struct LoserTree<'a, T> {
    runs: Vec<&'a [T]>,
    /// Next unread position in each run.
    pos: Vec<usize>,
    /// `tree[i]` = run index of the loser at internal node `i`; `tree[0]`
    /// holds the overall winner.
    tree: Vec<usize>,
    /// Number of leaves (next power of two ≥ k).
    k_pad: usize,
    /// Comparisons performed so far.
    comparisons: u64,
    exhausted: usize,
}

impl<'a, T: Ord + Copy> LoserTree<'a, T> {
    /// Build a tree over `runs`. Empty runs are allowed.
    pub fn new(runs: Vec<&'a [T]>) -> Self {
        let k = runs.len().max(1);
        let k_pad = k.next_power_of_two();
        let pos = vec![0; runs.len()];
        let mut lt = Self {
            runs,
            pos,
            tree: vec![usize::MAX; k_pad],
            k_pad,
            comparisons: 0,
            exhausted: 0,
        };
        lt.rebuild();
        lt
    }

    /// Current head element of run `r`, if any (copied out).
    #[inline]
    fn head(&self, r: usize) -> Option<T> {
        if r >= self.runs.len() {
            return None;
        }
        self.runs[r].get(self.pos[r]).copied()
    }

    /// Full rebuild: play every match bottom-up.
    fn rebuild(&mut self) {
        // Temporary winners array for each node of the (padded) tree.
        let mut winners = vec![usize::MAX; 2 * self.k_pad];
        for leaf in 0..self.k_pad {
            winners[self.k_pad + leaf] = leaf;
        }
        for node in (1..self.k_pad).rev() {
            let a = winners[2 * node];
            let b = winners[2 * node + 1];
            let (w, l) = self.play(a, b);
            winners[node] = w;
            self.tree[node] = l;
        }
        self.tree[0] = winners.get(1).copied().unwrap_or(usize::MAX);
    }

    /// Play a match: the run with the smaller head wins (ties to the lower
    /// index, making the merge stable across runs). Exhausted runs always
    /// lose.
    #[inline]
    fn play(&mut self, a: usize, b: usize) -> (usize, usize) {
        match (self.head(a), self.head(b)) {
            (Some(x), Some(y)) => {
                self.comparisons += 1;
                match x.cmp(&y) {
                    core::cmp::Ordering::Less => (a, b),
                    core::cmp::Ordering::Greater => (b, a),
                    // Equal heads: the lower run index wins, so the merge is
                    // stable across runs regardless of replay order.
                    core::cmp::Ordering::Equal => (a.min(b), a.max(b)),
                }
            }
            (Some(_), None) => (a, b),
            (None, Some(_)) => (b, a),
            (None, None) => (a.min(b), a.max(b)),
        }
    }

    /// Pop the globally smallest remaining element.
    pub fn next_element(&mut self) -> Option<T> {
        let w = self.tree[0];
        let val = self.head(w)?;
        self.pos[w] += 1;
        if self.head(w).is_none() {
            self.exhausted += 1;
        }
        // Replay the path from w's leaf to the root.
        let mut cur = w;
        let mut node = (self.k_pad + w) / 2;
        while node >= 1 {
            let opponent = self.tree[node];
            let (win, lose) = self.play(cur, opponent);
            self.tree[node] = lose;
            cur = win;
            node /= 2;
        }
        self.tree[0] = cur;
        Some(val)
    }

    /// Total comparisons performed (for compute charging).
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Remaining (unread) elements across all runs.
    pub fn remaining(&self) -> usize {
        self.runs
            .iter()
            .zip(&self.pos)
            .map(|(r, &p)| r.len() - p)
            .sum()
    }
}

impl<T: Ord + Copy> Iterator for LoserTree<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.next_element()
    }
}

impl<T> Drop for LoserTree<'_, T> {
    fn drop(&mut self) {
        // Comparisons are accumulated locally (one add per comparison would
        // dominate the merge inner loop) and flushed to the global telemetry
        // counter once per tree.
        if self.comparisons > 0 {
            tlmm_telemetry::counter!("core.losertree.comparisons").add(self.comparisons);
        }
    }
}

/// Merge `runs` into `out` (appended), returning the number of comparisons.
pub fn merge_into<T: Ord + Copy>(runs: &[&[T]], out: &mut Vec<T>) -> u64 {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    out.reserve(total);
    match runs.len() {
        0 => 0,
        1 => {
            out.extend_from_slice(runs[0]);
            0
        }
        2 => {
            // Two-way fast path.
            let (a, b) = (runs[0], runs[1]);
            let (mut i, mut j) = (0, 0);
            let mut cmps = 0;
            while i < a.len() && j < b.len() {
                cmps += 1;
                if a[i] <= b[j] {
                    out.push(a[i]);
                    i += 1;
                } else {
                    out.push(b[j]);
                    j += 1;
                }
            }
            out.extend_from_slice(&a[i..]);
            out.extend_from_slice(&b[j..]);
            if cmps > 0 {
                tlmm_telemetry::counter!("core.losertree.comparisons").add(cmps);
            }
            cmps
        }
        _ => {
            let mut lt = LoserTree::new(runs.to_vec());
            while let Some(v) = lt.next_element() {
                out.push(v);
            }
            lt.comparisons()
        }
    }
}

/// Merge `runs` into the exactly-sized slice `out`, returning comparisons.
///
/// # Panics
/// Panics if `out.len()` differs from the total run length.
pub fn merge_into_slice<T: Ord + Copy>(runs: &[&[T]], out: &mut [T]) -> u64 {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert_eq!(out.len(), total, "output slice must fit the merge exactly");
    match runs.len() {
        0 => 0,
        1 => {
            out.copy_from_slice(runs[0]);
            0
        }
        _ => {
            let mut lt = LoserTree::new(runs.to_vec());
            for slot in out.iter_mut() {
                *slot = lt.next_element().expect("run length accounting broken");
            }
            lt.comparisons()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_merge(runs: Vec<Vec<u64>>) {
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut out = Vec::new();
        merge_into(&refs, &mut out);
        let mut expect: Vec<u64> = runs.concat();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn merges_zero_one_two_many() {
        check_merge(vec![]);
        check_merge(vec![vec![1, 2, 3]]);
        check_merge(vec![vec![1, 3, 5], vec![2, 4, 6]]);
        check_merge(vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]]);
    }

    #[test]
    fn merges_with_empty_runs() {
        check_merge(vec![vec![], vec![1, 2], vec![], vec![0, 3], vec![]]);
        check_merge(vec![vec![], vec![], vec![]]);
    }

    #[test]
    fn merges_duplicates() {
        check_merge(vec![vec![1, 1, 1], vec![1, 1], vec![1]]);
        check_merge(vec![vec![5; 100], vec![5; 50], vec![4; 10], vec![6; 10]]);
    }

    #[test]
    fn merges_uneven_lengths() {
        check_merge(vec![
            (0..1000).collect(),
            vec![500],
            (250..260).collect(),
            vec![],
        ]);
    }

    #[test]
    fn non_power_of_two_runs() {
        for k in [3usize, 5, 6, 7, 9, 13] {
            let runs: Vec<Vec<u64>> = (0..k)
                .map(|i| (0..50).map(|j| (j * k + i) as u64).collect())
                .collect();
            check_merge(runs);
        }
    }

    #[test]
    fn comparisons_near_lg_k_per_element() {
        let k = 16;
        let n_per = 1000;
        let runs: Vec<Vec<u64>> = (0..k)
            .map(|i| (0..n_per).map(|j| (j * k + i) as u64).collect())
            .collect();
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut out = Vec::new();
        let cmps = merge_into(&refs, &mut out);
        let n = (k * n_per) as u64;
        // lg 16 = 4 comparisons per element, plus lower-order build cost.
        assert!(cmps <= n * 4 + 64, "cmps={cmps}, n={n}");
        assert!(cmps >= n, "merging must compare at least once per element");
    }

    #[test]
    fn loser_tree_is_stable_across_equal_heads() {
        // With equal elements, lower run index wins — verify by tagging.
        let a = [(1u64, 0u64), (2, 0)];
        let b = [(1u64, 1u64), (2, 1)];
        let mut lt = LoserTree::new(vec![&a[..], &b[..]]);
        let order: Vec<_> = std::iter::from_fn(|| lt.next_element()).collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn remaining_counts_down() {
        let a = [1u64, 3];
        let b = [2u64];
        let mut lt = LoserTree::new(vec![&a[..], &b[..]]);
        assert_eq!(lt.remaining(), 3);
        lt.next_element();
        assert_eq!(lt.remaining(), 2);
        lt.next_element();
        lt.next_element();
        assert_eq!(lt.remaining(), 0);
        assert_eq!(lt.next_element(), None);
    }

    #[test]
    fn merge_into_slice_matches_vec_variant() {
        let runs = [vec![1u64, 5, 9], vec![2, 6], vec![0, 7, 8]];
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut v = Vec::new();
        merge_into(&refs, &mut v);
        let mut s = vec![0u64; 8];
        merge_into_slice(&refs, &mut s);
        assert_eq!(v, s);
    }

    #[test]
    #[should_panic(expected = "output slice must fit")]
    fn merge_into_slice_rejects_bad_length() {
        let a = [1u64];
        let mut out = [0u64; 3];
        merge_into_slice(&[&a[..]], &mut out);
    }

    #[test]
    fn iterator_interface() {
        let a = [1u64, 4];
        let b = [2u64, 3];
        let lt = LoserTree::new(vec![&a[..], &b[..]]);
        let v: Vec<u64> = lt.collect();
        assert_eq!(v, vec![1, 2, 3, 4]);
    }
}
