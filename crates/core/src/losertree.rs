//! Loser-tree (tournament) k-way merging.
//!
//! The workhorse of every merge in this crate: the external mergesort's
//! merge passes, NMsort's Phase-2 multiway merge of sorted chunk segments,
//! and the baseline's final merge. A loser tree merges `k` sorted runs with
//! `⌈lg k⌉` comparisons per emitted element, independent of `k` — exactly
//! the constant the multiway merge sort analysis (Theorem 1) assumes.
//!
//! **Kernel engineering** (see `kernels` module docs and DESIGN.md §10):
//! this is the branchless rewrite. Each internal node stores the loser's
//! *key and leaf id side by side* (parallel `node_keys`/`node_meta`
//! arrays), so one replay step issues two independent L1 loads instead of
//! the reference implementation's chained `tree[node] → heads[loser]`
//! indirection — the replay path's serial dependency is the comparison
//! chain itself, nothing else. Winner/loser selection is straight-line
//! conditional-move code built from non-short-circuit `&`/`|` predicates;
//! the only data-dependent branch left is the comparison. Exhausted runs
//! are handled sentinel-style via an alive bit folded into each node's
//! meta word rather than per-match `Option` checks.
//!
//! The replay's *store policy* is adaptive: conditional-move stores when
//! match outcomes are near coin flips (uniform keys — nothing to predict),
//! a predictable guarded store when outcomes are biased (duplicate-heavy
//! inputs, where skipping the no-op store keeps the key chain out of
//! store-to-load forwarding). The policy is retuned every [`ADAPT_BLOCK`]
//! elements from the observed winner-flip rate; both policies leave
//! identical tree state and comparison counts. The original branchy
//! implementation survives as [`crate::kernels::reference`], and the
//! equivalence tests assert both emit the identical element sequence and
//! comparison count.

/// Low 31 bits of a node's meta word: the leaf index. Bit 31 is the alive
/// flag.
const LEAF_MASK: u32 = 0x7FFF_FFFF;
const ALIVE_BIT: u32 = 1 << 31;

/// Elements between replay-mode retunes. Long enough to amortize the
/// decision, short enough to catch phase changes in the input.
const ADAPT_BLOCK: u32 = 8192;

/// Policy flips tolerated before the adaptive store policy is pinned.
/// Duplicate-heavy inputs with long equal-key runs sit right at the
/// `opp_wins` thresholds and would otherwise thrash the policy every
/// block, paying the mispredict cost of *both* forms; once the flip count
/// reaches this plateau the guarded form is pinned for the tree's
/// remaining life (it degrades gracefully on near-even outcomes, the
/// branchless form does not on biased ones).
const PIN_FLIPS: u32 = 4;

/// Runs at or below this length are eligible for pair pre-merging in
/// [`merge_into_slice`]: adjacent short runs are two-way merged (a
/// vectorizable streaming kernel) before the loser tree builds, halving
/// `k` where it is cheap. Long runs skip it — the pair buffer would
/// rival the tree's own working set.
const PREMERGE_MAX: usize = 1 << 16;

/// A loser tree over `k` in-memory sorted runs.
///
/// The tree stores, at each internal node, the *loser* of the match played
/// there; the overall winner sits above the root. Replaying a leaf after
/// emitting its head costs one root-to-leaf path of comparisons.
pub struct LoserTree<'a, T> {
    runs: Vec<&'a [T]>,
    /// Next unread position in each run.
    pos: Vec<usize>,
    /// Key of the loser parked at each internal node (`[1..k_pad]`; slot 0
    /// unused). Dead losers hold an arbitrary filler guarded by the alive
    /// bit in [`Self::node_meta`]. Empty when every run is empty.
    node_keys: Vec<T>,
    /// Loser leaf index (low 31 bits) and alive flag (bit 31) per internal
    /// node, parallel to `node_keys`.
    node_meta: Vec<u32>,
    /// The overall winner: its head element and leaf index. `None` once
    /// every run is exhausted (or the tree was built over no elements).
    root: Option<(T, u32)>,
    /// Count of live leaves — lets merge loops detect the last-run tail in
    /// O(1) and switch to a bulk copy.
    live: usize,
    /// Number of leaves (next power of two ≥ k).
    k_pad: usize,
    /// Comparisons performed so far.
    comparisons: u64,
    /// Replay store policy for the current block: `true` = guard the loser
    /// store behind `if opp_wins` (fast when the winner is biased, i.e.
    /// duplicate-heavy inputs where the branch predicts), `false` = fully
    /// branchless conditional moves (fast when match outcomes are coin
    /// flips, i.e. uniform keys). Retuned every [`ADAPT_BLOCK`] elements
    /// from the observed `opp_wins` rate; both policies leave identical
    /// tree state and comparison counts, so switching is free.
    guarded_store: bool,
    /// Elements left before the next retune.
    block_left: u32,
    /// Replay steps and `opp_wins` outcomes observed in this block.
    block_steps: u64,
    block_opp_wins: u64,
    /// Retunes whose decision flipped the policy (see [`PIN_FLIPS`]).
    policy_flips: u32,
    /// Oscillation plateau reached: the policy is pinned guarded and no
    /// longer retuned. Wall-clock heuristic only — the emitted sequence
    /// and comparison count are policy-independent.
    policy_pinned: bool,
}

impl<'a, T: Ord + Copy> LoserTree<'a, T> {
    /// Build a tree over `runs`. Empty runs are allowed.
    pub fn new(runs: Vec<&'a [T]>) -> Self {
        let k = runs.len().max(1);
        let k_pad = k.next_power_of_two();
        let pos = vec![0; runs.len()];
        let live = runs.iter().filter(|r| !r.is_empty()).count();
        let mut lt = Self {
            runs,
            pos,
            node_keys: Vec::new(),
            node_meta: Vec::new(),
            root: None,
            live,
            k_pad,
            comparisons: 0,
            guarded_store: false,
            block_left: ADAPT_BLOCK,
            block_steps: 0,
            block_opp_wins: 0,
            policy_flips: 0,
            policy_pinned: false,
        };
        lt.rebuild();
        lt
    }

    /// Full rebuild: play every match bottom-up. With no elements at all
    /// the tree starts (and stays) exhausted.
    fn rebuild(&mut self) {
        // Any element works as the dead-slot filler; the alive bit guards
        // every read.
        let Some(fill) = self.runs.iter().find_map(|r| r.first().copied()) else {
            return;
        };
        let mut winners: Vec<(T, u32)> = vec![(fill, 0); 2 * self.k_pad];
        for leaf in 0..self.k_pad {
            winners[self.k_pad + leaf] = match self.runs.get(leaf).and_then(|r| r.first()) {
                Some(&h) => (h, leaf as u32 | ALIVE_BIT),
                None => (fill, leaf as u32),
            };
        }
        self.node_keys = vec![fill; self.k_pad];
        self.node_meta = vec![0; self.k_pad];
        for node in (1..self.k_pad).rev() {
            let (w, l) = Self::play(
                winners[2 * node],
                winners[2 * node + 1],
                &mut self.comparisons,
            );
            winners[node] = w;
            self.node_keys[node] = l.0;
            self.node_meta[node] = l.1;
        }
        let (rk, rm) = winners[1];
        self.root = (rm & ALIVE_BIT != 0).then_some((rk, rm & LEAF_MASK));
    }

    /// Play a match between two `(key, meta)` entries: the live entry with
    /// the smaller key wins (ties to the lower leaf index, making the merge
    /// stable across runs). Exhausted entries always lose; a comparison is
    /// charged only when both are live.
    #[inline]
    fn play(a: (T, u32), b: (T, u32), cmps: &mut u64) -> ((T, u32), (T, u32)) {
        let (aa, ba) = (a.1 & ALIVE_BIT != 0, b.1 & ALIVE_BIT != 0);
        if aa & ba {
            *cmps += 1;
        }
        let a_wins = if aa & ba {
            (a.0 < b.0) | ((a.0 == b.0) & (a.1 & LEAF_MASK < b.1 & LEAF_MASK))
        } else if aa | ba {
            aa
        } else {
            a.1 & LEAF_MASK < b.1 & LEAF_MASK
        };
        if a_wins {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Pop the globally smallest remaining element.
    pub fn next_element(&mut self) -> Option<T> {
        // The mode branch is block-stable and predicts perfectly; each
        // monomorphized body keeps its replay loop free of the other
        // policy's code.
        let out = if self.guarded_store {
            self.advance::<true>()
        } else {
            self.advance::<false>()
        };
        self.block_left -= 1;
        if self.block_left == 0 {
            self.retune();
        }
        out
    }

    /// Emit one element with the given store policy. Both policies compute
    /// the same winner predicate and leave identical tree state — only the
    /// microarchitectural shape differs (see [`Self::guarded_store`]).
    #[inline]
    fn advance<const GUARDED: bool>(&mut self) -> Option<T> {
        let (val, w) = self.root?;
        let w = w as usize;
        // Advance leaf w; the winner always indexes a real run.
        let p = self.pos[w] + 1;
        self.pos[w] = p;
        let (mut cur_key, mut cur_meta) = match self.runs[w].get(p) {
            Some(&next) => (next, w as u32 | ALIVE_BIT),
            None => {
                self.live -= 1;
                // `val` doubles as the dead-leaf filler; the cleared alive
                // bit guards it.
                (val, w as u32)
            }
        };
        // Replay the path from w's leaf to the root. Each step loads the
        // parked loser's key and meta from parallel arrays (two independent
        // L1 loads), then selects the winner with a straight-line
        // non-short-circuit `&`/`|` predicate — flag-setting compares, no
        // data-dependent branch.
        let mut node = (self.k_pad + w) >> 1;
        let mut cmps = 0u64;
        let mut steps = 0u64;
        let mut opp_won = 0u64;
        while node != 0 {
            let ok = self.node_keys[node];
            let om = self.node_meta[node];
            let (ca, oa) = (cur_meta & ALIVE_BIT != 0, om & ALIVE_BIT != 0);
            cmps += (ca & oa) as u64;
            // `opp` wins when it is alive and (cur is dead, or opp's key is
            // strictly smaller, or the keys tie and opp has the lower leaf
            // index).
            let opp_wins = oa
                & (!ca
                    | (ok < cur_key)
                    | ((ok == cur_key) & (om & LEAF_MASK < cur_meta & LEAF_MASK)));
            steps += 1;
            opp_won += opp_wins as u64;
            if GUARDED {
                // Parked loser lost again ⇒ the node already holds the right
                // entry; the guard predicts well exactly when outcomes are
                // biased.
                if opp_wins {
                    self.node_keys[node] = cur_key;
                    self.node_meta[node] = cur_meta;
                    cur_key = ok;
                    cur_meta = om;
                }
            } else {
                // Unconditional conditional-move form: no branch to
                // mispredict when outcomes are coin flips.
                let lose_key = if opp_wins { cur_key } else { ok };
                let lose_meta = if opp_wins { cur_meta } else { om };
                self.node_keys[node] = lose_key;
                self.node_meta[node] = lose_meta;
                cur_key = if opp_wins { ok } else { cur_key };
                cur_meta = if opp_wins { om } else { cur_meta };
            }
            node >>= 1;
        }
        self.comparisons += cmps;
        self.block_steps += steps;
        self.block_opp_wins += opp_won;
        self.root = (cur_meta & ALIVE_BIT != 0).then_some((cur_key, cur_meta & LEAF_MASK));
        Some(val)
    }

    /// Pick the next block's store policy from this block's `opp_wins`
    /// rate: outcomes outside [1/4, 3/4] are predictable enough that the
    /// guarded store wins; near-even outcomes favor the branchless form.
    ///
    /// Inputs whose flip rate hovers at the thresholds (long equal-key
    /// runs alternating with mixed regions) would re-decide every block;
    /// after [`PIN_FLIPS`] flips the guarded policy is pinned instead.
    fn retune(&mut self) {
        if !self.policy_pinned {
            let (s, w) = (self.block_steps, self.block_opp_wins);
            let want = 4 * w <= s || 4 * w >= 3 * s;
            if want != self.guarded_store {
                self.policy_flips += 1;
                if self.policy_flips >= PIN_FLIPS {
                    self.policy_pinned = true;
                    self.guarded_store = true;
                } else {
                    self.guarded_store = want;
                }
            }
        }
        self.block_left = ADAPT_BLOCK;
        self.block_steps = 0;
        self.block_opp_wins = 0;
    }

    /// Total comparisons performed (for compute charging).
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Remaining (unread) elements across all runs.
    pub fn remaining(&self) -> usize {
        self.runs
            .iter()
            .zip(&self.pos)
            .map(|(r, &p)| r.len() - p)
            .sum()
    }
}

impl<T: Ord + Copy> Iterator for LoserTree<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.next_element()
    }
}

impl<T> Drop for LoserTree<'_, T> {
    fn drop(&mut self) {
        // Comparisons are accumulated locally (one add per comparison would
        // dominate the merge inner loop) and flushed to the global telemetry
        // counter once per tree.
        if self.comparisons > 0 {
            tlmm_telemetry::counter!("core.losertree.comparisons").add(self.comparisons);
        }
    }
}

/// Merge `runs` into `out` (appended), returning the number of comparisons.
pub fn merge_into<T: Ord + Copy>(runs: &[&[T]], out: &mut Vec<T>) -> u64 {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    out.reserve(total);
    match runs.len() {
        0 => 0,
        1 => {
            out.extend_from_slice(runs[0]);
            0
        }
        2 => {
            // Two-way fast path.
            let (a, b) = (runs[0], runs[1]);
            let (mut i, mut j) = (0, 0);
            let mut cmps = 0;
            while i < a.len() && j < b.len() {
                cmps += 1;
                if a[i] <= b[j] {
                    out.push(a[i]);
                    i += 1;
                } else {
                    out.push(b[j]);
                    j += 1;
                }
            }
            out.extend_from_slice(&a[i..]);
            out.extend_from_slice(&b[j..]);
            if cmps > 0 {
                tlmm_telemetry::counter!("core.losertree.comparisons").add(cmps);
            }
            cmps
        }
        _ => {
            let mut lt = LoserTree::new(runs.to_vec());
            while let Some(v) = lt.next_element() {
                out.push(v);
            }
            lt.comparisons()
        }
    }
}

/// Merge `runs` into the exactly-sized slice `out`, returning comparisons.
/// The output is written in place — no per-element capacity checks, and a
/// final-run tail is bulk-copied once its last competitor exhausts.
///
/// With four or more runs, adjacent runs no longer than [`PREMERGE_MAX`]
/// (and not flagged [`duplicate_heavy`], where the tree's guarded-store
/// streaks win) are first two-way merged by the streaming pair kernel (4-wide bitonic
/// network when SIMD dispatch is active), and the loser tree plays over
/// the halved run set. Pair merges are charged the *analytic* two-way
/// merge comparison count ([`crate::kernels::simd::pair_merge_cost`]), so
/// the returned total — and every ledger built from it — is identical
/// whichever kernel executed. The emitted sequence is unchanged too:
/// pair-merging adjacent runs with lower-index tie preference composes
/// with the tree's leaf-order tie-breaking.
///
/// # Panics
/// Panics if `out.len()` differs from the total run length.
/// Plateau probe for the pair pre-merge: `true` when sampled positions of
/// the sorted run sit inside equal-key plateaus at least [`PLATEAU_GAP`]
/// long. Such runs feed the loser tree long winner streaks that its
/// guarded store policy turns into near-free replay steps, while the pair
/// kernel does fixed work per element regardless — so duplicate-heavy
/// runs skip pre-merging. The decision reads only the data, so it is
/// identical across SIMD dispatch and thread counts, and the charged
/// comparison total is unchanged either way (the pair cost is the exact
/// analytic tree-node equivalent).
fn duplicate_heavy<T: Ord>(r: &[T]) -> bool {
    const PROBES: usize = 4;
    if r.len() < PLATEAU_GAP * PROBES {
        return false;
    }
    let span = r.len() - PLATEAU_GAP;
    let hits = (0..PROBES)
        .filter(|&k| {
            let p = span * (2 * k + 1) / (2 * PROBES);
            r[p] == r[p + PLATEAU_GAP]
        })
        .count();
    hits * 2 >= PROBES
}

/// Plateau length at which the loser tree's guarded-store streaks beat
/// the pair kernel's fixed per-element work (see [`duplicate_heavy`]).
const PLATEAU_GAP: usize = 32;

pub fn merge_into_slice<T: crate::SortElem>(runs: &[&[T]], out: &mut [T]) -> u64 {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    assert_eq!(out.len(), total, "output slice must fit the merge exactly");
    match runs.len() {
        0 => 0,
        1 => {
            out.copy_from_slice(runs[0]);
            0
        }
        _ => {
            // Plan the pair pre-merge: walk left to right pairing adjacent
            // short runs; `true` marks "paired with the next run".
            let mut plan: Vec<(usize, bool)> = Vec::new();
            let mut paired_total = 0usize;
            if runs.len() >= 4 {
                let dup: Vec<bool> = runs.iter().map(|r| duplicate_heavy(r)).collect();
                let mut i = 0usize;
                while i < runs.len() {
                    if i + 1 < runs.len()
                        && runs[i].len() <= PREMERGE_MAX
                        && runs[i + 1].len() <= PREMERGE_MAX
                        && !dup[i]
                        && !dup[i + 1]
                    {
                        plan.push((i, true));
                        paired_total += runs[i].len() + runs[i + 1].len();
                        i += 2;
                    } else {
                        plan.push((i, false));
                        i += 1;
                    }
                }
            }
            let mut cmps = 0u64;
            let mut buf: Vec<T> = Vec::new();
            let mut tree_runs: Vec<&[T]> = Vec::new();
            if plan.iter().any(|&(_, paired)| paired) {
                buf.resize(paired_total, T::default());
                let mut rest: &mut [T] = &mut buf;
                for &(i, paired) in &plan {
                    if paired {
                        let (a, b) = (runs[i], runs[i + 1]);
                        let (dst, next) = rest.split_at_mut(a.len() + b.len());
                        crate::kernels::simd::merge_pair(a, b, dst);
                        cmps += crate::kernels::simd::pair_merge_cost(a, b);
                        rest = next;
                    }
                }
                let mut off = 0usize;
                for &(i, paired) in &plan {
                    if paired {
                        let len = runs[i].len() + runs[i + 1].len();
                        tree_runs.push(&buf[off..off + len]);
                        off += len;
                    } else {
                        tree_runs.push(runs[i]);
                    }
                }
            }
            let tree_over: &[&[T]] = if tree_runs.is_empty() {
                runs
            } else {
                &tree_runs
            };
            let mut lt = LoserTree::new(tree_over.to_vec());
            let mut emitted = 0usize;
            while emitted < total {
                // Once a single run remains, stream its tail with one bulk
                // copy instead of lg(k) tree replays per element. The check
                // is O(1) via the live-leaf counter.
                if lt.live == 1 {
                    let r = lt.root.expect("live leaf must be the winner").1 as usize;
                    let tail = &lt.runs[r][lt.pos[r]..];
                    out[emitted..].copy_from_slice(tail);
                    lt.pos[r] = lt.runs[r].len();
                    lt.root = None;
                    lt.live = 0;
                    break;
                }
                let v = lt.next_element().expect("run length accounting broken");
                out[emitted] = v;
                emitted += 1;
            }
            cmps + lt.comparisons()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::reference::ReferenceLoserTree;

    fn check_merge(runs: Vec<Vec<u64>>) {
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut out = Vec::new();
        merge_into(&refs, &mut out);
        let mut expect: Vec<u64> = runs.concat();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn merges_zero_one_two_many() {
        check_merge(vec![]);
        check_merge(vec![vec![1, 2, 3]]);
        check_merge(vec![vec![1, 3, 5], vec![2, 4, 6]]);
        check_merge(vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]]);
    }

    #[test]
    fn merges_with_empty_runs() {
        check_merge(vec![vec![], vec![1, 2], vec![], vec![0, 3], vec![]]);
        check_merge(vec![vec![], vec![], vec![]]);
    }

    #[test]
    fn merges_duplicates() {
        check_merge(vec![vec![1, 1, 1], vec![1, 1], vec![1]]);
        check_merge(vec![vec![5; 100], vec![5; 50], vec![4; 10], vec![6; 10]]);
    }

    #[test]
    fn merges_uneven_lengths() {
        check_merge(vec![
            (0..1000).collect(),
            vec![500],
            (250..260).collect(),
            vec![],
        ]);
    }

    #[test]
    fn non_power_of_two_runs() {
        for k in [3usize, 5, 6, 7, 9, 13] {
            let runs: Vec<Vec<u64>> = (0..k)
                .map(|i| (0..50).map(|j| (j * k + i) as u64).collect())
                .collect();
            check_merge(runs);
        }
    }

    #[test]
    fn comparisons_near_lg_k_per_element() {
        let k = 16;
        let n_per = 1000;
        let runs: Vec<Vec<u64>> = (0..k)
            .map(|i| (0..n_per).map(|j| (j * k + i) as u64).collect())
            .collect();
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut out = Vec::new();
        let cmps = merge_into(&refs, &mut out);
        let n = (k * n_per) as u64;
        // lg 16 = 4 comparisons per element, plus lower-order build cost.
        assert!(cmps <= n * 4 + 64, "cmps={cmps}, n={n}");
        assert!(cmps >= n / 2, "merging must pay for most elements: {cmps}");
    }

    #[test]
    fn loser_tree_is_stable_across_equal_heads() {
        // With equal elements, lower run index wins — verify by tagging.
        let a = [(1u64, 0u64), (2, 0)];
        let b = [(1u64, 1u64), (2, 1)];
        let mut lt = LoserTree::new(vec![&a[..], &b[..]]);
        let order: Vec<_> = std::iter::from_fn(|| lt.next_element()).collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn remaining_counts_down() {
        let a = [1u64, 3];
        let b = [2u64];
        let mut lt = LoserTree::new(vec![&a[..], &b[..]]);
        assert_eq!(lt.remaining(), 3);
        lt.next_element();
        assert_eq!(lt.remaining(), 2);
        lt.next_element();
        lt.next_element();
        assert_eq!(lt.remaining(), 0);
        assert_eq!(lt.next_element(), None);
    }

    #[test]
    fn merge_into_slice_matches_vec_variant() {
        let runs = [vec![1u64, 5, 9], vec![2, 6], vec![0, 7, 8]];
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut v = Vec::new();
        merge_into(&refs, &mut v);
        let mut s = vec![0u64; 8];
        merge_into_slice(&refs, &mut s);
        assert_eq!(v, s);
    }

    #[test]
    #[should_panic(expected = "output slice must fit")]
    fn merge_into_slice_rejects_bad_length() {
        let a = [1u64];
        let mut out = [0u64; 3];
        merge_into_slice(&[&a[..]], &mut out);
    }

    #[test]
    fn iterator_interface() {
        let a = [1u64, 4];
        let b = [2u64, 3];
        let lt = LoserTree::new(vec![&a[..], &b[..]]);
        let v: Vec<u64> = lt.collect();
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn matches_reference_tree_sequence_and_comparisons() {
        // The branchless rewrite must be observationally identical to the
        // original branchy tree: same emitted sequence, same comparison
        // count, on run sets with duplicates and empty runs.
        let runs: Vec<Vec<u64>> = vec![
            (0..500).map(|i| i * 3).collect(),
            vec![],
            (0..200).map(|i| i * 7 + 1).collect(),
            vec![42; 100],
            vec![],
            (0..900).map(|i| i / 2).collect(),
        ];
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut new_lt = LoserTree::new(refs.clone());
        let mut old_lt = ReferenceLoserTree::new(refs);
        loop {
            let (a, b) = (new_lt.next_element(), old_lt.next_element());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(new_lt.comparisons(), old_lt.comparisons());
    }

    #[test]
    fn adaptive_store_policy_switches_and_stays_equivalent() {
        // Duplicate-heavy runs long enough to cross several ADAPT_BLOCK
        // boundaries: the tree must flip to the guarded-store policy and
        // still match the reference element-for-element, comparison-for-
        // comparison.
        let runs: Vec<Vec<u64>> = (0..5)
            .map(|i| (0..30_000u64).map(|j| (j / 512) * 8 + i).collect())
            .collect();
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut new_lt = LoserTree::new(refs.clone());
        let mut old_lt = ReferenceLoserTree::new(refs);
        let mut switched = false;
        loop {
            switched |= new_lt.guarded_store;
            let (a, b) = (new_lt.next_element(), old_lt.next_element());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert!(switched, "biased input must engage the guarded store");
        assert_eq!(new_lt.comparisons(), old_lt.comparisons());
    }

    #[test]
    fn oscillating_input_pins_guarded_policy() {
        // Alternate duplicate-heavy regions (guarded wins) with uniform
        // regions (branchless wins), each spanning a couple of
        // ADAPT_BLOCKs of *emitted* elements: the retune decision flips at
        // every region edge. After PIN_FLIPS flips the policy must pin
        // guarded and stop thrashing — while staying observationally
        // identical to the reference.
        let region = 2 * ADAPT_BLOCK as u64; // emitted elements per region
        let k = 4u64;
        let per_run_region = region / k;
        let runs: Vec<Vec<u64>> = (0..k)
            .map(|r| {
                let mut v = Vec::new();
                let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(r + 1);
                for block in 0..12u64 {
                    let base = block * 1_000_000;
                    let start = v.len();
                    for _ in 0..per_run_region {
                        if block % 2 == 0 {
                            v.push(base); // all-equal region: heavily biased
                        } else {
                            // Pseudorandom region: match outcomes are coin
                            // flips (round-robin interleaving would be
                            // predictable and favor guarded too).
                            state = state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            v.push(base + (state >> 45));
                        }
                    }
                    v[start..].sort_unstable();
                }
                v
            })
            .collect();
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let mut new_lt = LoserTree::new(refs.clone());
        let mut old_lt = ReferenceLoserTree::new(refs);
        loop {
            let (a, b) = (new_lt.next_element(), old_lt.next_element());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(new_lt.comparisons(), old_lt.comparisons());
        assert!(
            new_lt.policy_flips >= PIN_FLIPS,
            "regions must flip the policy (flips = {})",
            new_lt.policy_flips
        );
        assert!(new_lt.policy_pinned, "plateau must pin the policy");
        assert!(new_lt.guarded_store, "pinned policy is the guarded store");
    }
}
