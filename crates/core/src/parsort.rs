//! The parallel scratchpad sort of §IV-C (Theorem 10).
//!
//! The paper parallelizes the sequential sample sort by (1) ingesting
//! blocks into the scratchpad with all `p′` processors and (2) sorting
//! within the scratchpad with a PEM-style parallel sort (Theorem 8),
//! reducing both Theorem 6 terms by `p′` — the number of processors that
//! can usefully make *simultaneous block transfers* (bandwidth limits may
//! make `p′ < p`).
//!
//! This module is a thin, documented wrapper over the shared bucketizing
//! engine with `lanes = p′`: every scan's ingest, in-scratchpad sort,
//! boundary extraction and bucket write-out is charged (and, with
//! `threads > 1`, executed) across the lanes. NMsort (§IV-D) remains the
//! *practical* parallel algorithm; this one exists to check Theorem 10's
//! scaling — see `tests/model_validation.rs` and the `parsort_scaling`
//! test below.

use crate::seqsort::{seq_scratchpad_sort, SeqSortConfig, SeqSortReport};
use crate::{SortElem, SortError};
use tlmm_scratchpad::{FarArray, TwoLevel};

/// Tuning knobs for [`par_scratchpad_sort`].
#[derive(Debug, Clone)]
pub struct ParSortConfig {
    /// Simultaneous block-transfer lanes `p′`.
    pub lanes: usize,
    /// RNG seed for pivot sampling.
    pub seed: u64,
    /// Pivot count per scan (default `Θ(M/B)`).
    pub n_pivots: Option<usize>,
    /// Host worker threads inside scans (1 = run inline).
    pub threads: usize,
}

impl Default for ParSortConfig {
    fn default() -> Self {
        Self {
            lanes: 8,
            seed: 0x0DD5_EED5,
            n_pivots: None,
            threads: crate::pool::host_threads(),
        }
    }
}

/// Sort `input` with the Theorem 10 parallel scratchpad sample sort.
pub fn par_scratchpad_sort<T: SortElem>(
    tl: &TwoLevel,
    input: FarArray<T>,
    cfg: &ParSortConfig,
) -> Result<(FarArray<T>, SeqSortReport), SortError> {
    if cfg.lanes == 0 {
        return Err(SortError::BadConfig {
            reason: "ParSortConfig::lanes must be >= 1 (p' = 0 lanes cannot transfer)",
        });
    }
    let _run_span = tlmm_telemetry::span!("par_scratchpad_sort");
    seq_scratchpad_sort(
        tl,
        input,
        &SeqSortConfig {
            seed: cfg.seed,
            max_depth: 64,
            n_pivots: cfg.n_pivots,
            lanes: cfg.lanes,
            threads: cfg.threads,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tlmm_model::ScratchpadParams;
    use tlmm_scratchpad::PhaseTrace;

    fn tl() -> TwoLevel {
        TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
    }

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn zero_lanes_is_rejected_at_the_api_edge() {
        let tl = tl();
        let v = random_vec(1000, 9);
        let err = par_scratchpad_sort(
            &tl,
            tl.far_from_vec(v),
            &ParSortConfig {
                lanes: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, crate::SortError::BadConfig { .. }));
        assert!(err.to_string().contains("lanes"));
        // Rejected before any work: nothing charged.
        assert_eq!(tl.ledger().snapshot().total_blocks(), 0);
    }

    #[test]
    fn sorts_correctly_with_many_lanes() {
        let tl = tl();
        let v = random_vec(400_000, 1);
        let mut expect = v.clone();
        expect.sort_unstable();
        let (out, report) =
            par_scratchpad_sort(&tl, tl.far_from_vec(v), &ParSortConfig::default()).unwrap();
        assert_eq!(out.as_slice_uncharged(), expect.as_slice());
        assert!(report.scans >= 1);
    }

    #[test]
    fn lanes_do_not_change_total_volume() {
        // Theorem 10 divides *steps*, not transfers: the ledger totals must
        // be lane-count-independent.
        let run = |lanes: usize| {
            let tl = tl();
            let v = random_vec(300_000, 2);
            par_scratchpad_sort(
                &tl,
                tl.far_from_vec(v),
                &ParSortConfig {
                    lanes,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            tl.ledger().snapshot()
        };
        let s1 = run(1);
        let s8 = run(8);
        // Far traffic (ingest, write-back, bucket appends) is exactly
        // lane-independent; near traffic may differ slightly because the
        // in-scratchpad sort's run size adapts to the per-lane cache share.
        assert_eq!(s1.far_bytes, s8.far_bytes);
        let near_ratio = s8.near_bytes as f64 / s1.near_bytes as f64;
        assert!(
            (0.8..1.4).contains(&near_ratio),
            "near volumes should stay close: {near_ratio}"
        );
    }

    #[test]
    fn parsort_scaling_reduces_block_transfer_steps() {
        // The trace's per-lane maximum (the "block-transfer steps" of the
        // parallel model) must shrink ~p' when lanes grow.
        let trace_of = |lanes: usize| -> PhaseTrace {
            let tl = tl();
            let v = random_vec(300_000, 3);
            par_scratchpad_sort(
                &tl,
                tl.far_from_vec(v),
                &ParSortConfig {
                    lanes,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            tl.take_trace()
        };
        let steps =
            |t: &PhaseTrace| -> u64 { t.phases.iter().map(|p| p.max_lane().noc_bytes()).sum() };
        let t1 = steps(&trace_of(1));
        let t8 = steps(&trace_of(8));
        let ratio = t1 as f64 / t8 as f64;
        assert!(
            ratio > 3.0 && ratio < 12.0,
            "8 lanes should cut per-lane steps several-fold, got {ratio}"
        );
    }
}
