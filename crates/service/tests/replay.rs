//! Golden-replay pin: the scheduler's decision log is a pure function of
//! `(seed, p′, job list)`.
//!
//! The committed `tests/golden/replay_decisions.json` is the serialized
//! decision log of a fixed mixed-priority workload. Any change to admission
//! order, preemption victims, completion times, or retry hints shows up as
//! a diff here. Regenerate deliberately with `TLMM_BLESS=1 cargo test -p
//! tlmm-service --test replay`.

use tlmm_model::{Engine, ScratchpadParams};
use tlmm_service::{JobRequest, Priority, ServiceConfig, SortService};

fn golden_config() -> ServiceConfig {
    ServiceConfig {
        params: ScratchpadParams::new(64, 4.0, 1 << 20, 64 << 10).unwrap(),
        slots: 6,
        near_budget_bytes: 0,
        tenant_slot_cap: 4,
        queue_cap: [2, 8, 32],
        seed: 0xC0FFEE,
    }
}

fn golden_jobs() -> Vec<JobRequest> {
    // A deliberately spiky mix: bursts of arrivals, all three classes,
    // every engine, a few tight deadlines, one infeasible giant.
    let mut jobs = Vec::new();
    for i in 0..24u64 {
        let class = Priority::ALL[(i % 5) as usize % 3];
        let engine = Engine::ALL[(i as usize) % Engine::ALL.len()];
        let n = 3_000 + (i as usize % 7) * 4_000;
        jobs.push(JobRequest {
            tenant: i % 3,
            priority: class,
            engine,
            n,
            seed: 0x9E37_79B9 ^ i,
            arrival: (i / 6) * 5, // bursts of six
            deadline: if i % 8 == 3 {
                Some((i / 6) * 5 + 2_000_000)
            } else {
                None
            },
        });
    }
    // An SPMS job far beyond any shrink ladder on a tiny budget triggers
    // the Infeasible path only when the budget is squeezed; on the full
    // scratchpad it simply queues like everything else — still pinned.
    jobs.push(JobRequest {
        tenant: 9,
        priority: Priority::Background,
        engine: Engine::Spms,
        n: 60_000,
        seed: 42,
        arrival: 3,
        deadline: None,
    });
    jobs
}

#[test]
fn decision_log_matches_golden() {
    let svc = SortService::new(golden_config()).unwrap();
    let (report, _outcomes) = svc.run(&golden_jobs()).unwrap();
    assert_eq!(report.leak_failures, 0);
    let got = serde::json::to_string_pretty(&report.decisions).unwrap();

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/replay_decisions.json"
    );
    tlmm_testkit::check_golden_str(
        std::path::Path::new(path),
        &got,
        "fixed mixed-priority job list (seed 0xC0FFEE, 6 slots)",
    );
}

#[test]
fn replay_is_stable_across_runs_in_one_process() {
    let mk = || {
        let svc = SortService::new(golden_config()).unwrap();
        svc.run(&golden_jobs()).unwrap().0
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.goodput_units, b.goodput_units);
    assert_eq!(a.total_units, b.total_units);
}
