//! `tlmm-service` — a multi-tenant job-queue front end for the sort
//! engines.
//!
//! The paper's co-design story assumes one algorithm owns the scratchpad.
//! This crate asks the systems question that follows: what happens when
//! *many* sort jobs — different tenants, different priority classes,
//! different deadlines — contend for one near memory and one bounded pool
//! of `p′` transfer slots (Theorem 10)? Four mechanisms, all deterministic:
//!
//! * **Admission control** ([`tlmm_model::admission`]): every arriving job
//!   is costed with the model's closed-form mirrors *before* it runs. Jobs
//!   whose predicted near-memory peak cannot fit the remaining budget are
//!   queued or shed with a typed [`Rejected`] (carrying `retry_after`)
//!   instead of discovering scratchpad OOM mid-run.
//! * **Per-tenant slot quotas with priority preemption**: transfer slots
//!   are leased per tenant through the PR-4 deterministic executor
//!   ([`tlmm_scratchpad::Executor`]); when an interactive job waits,
//!   lower-class jobs yield slots down to one at the next phase boundary
//!   (a virtual-time event), counted in telemetry.
//! * **Deadlines & cooperative cancellation**: a queued job whose deadline
//!   passes times out without running; a running job gets a
//!   [`tlmm_scratchpad::CancelToken`] whose charged-unit budget trips at a
//!   real engine phase boundary — the scratchpad arena unwinds through
//!   RAII and is asserted leak-free after every job.
//! * **Overload degradation**: when the near budget is saturated, new
//!   NMsort jobs run the chunk-shrinking ladder *proactively*
//!   ([`tlmm_model::admission::shrink_to_fit`]) — admitted smaller instead
//!   of rejected, with the honest `degraded far_bytes ≥ clean` accounting
//!   the fault ladders already guarantee.
//!
//! # Execution model: virtual-time concurrency over serialized physical
//! # execution
//!
//! The scheduler is a discrete-event simulation in **virtual time**, whose
//! clock advances in *charged bytes* (far + near), the same currency the
//! cost ledger books. Jobs "run concurrently" in virtual time — they hold
//! slot leases and near-memory reservations, progress at `slots` units per
//! tick, get preempted, and complete — but each job's *physical* execution
//! (the actual sort, on the one shared [`tlmm_scratchpad::TwoLevel`])
//! happens serially at its virtual start instant. The measured ledger
//! delta of the physical run is the job's service demand. This keeps every
//! number honest (real engines, real faults, real cancellation, real leak
//! checks) while making admission, preemption, and completion order a pure
//! function of `(seed, p′, job list)` — replayable bit for bit, which the
//! golden-replay test pins.

pub mod service;

pub use service::{
    percentile, ClassStats, Decision, DecisionKind, JobOutcome, JobRequest, Priority, RejectReason,
    Rejected, ServiceConfig, ServiceError, ServiceReport, SortService,
};
