//! The virtual-time job scheduler: admission, quotas, deadlines, overload.
//!
//! See the crate docs for the execution model. Everything in this module is
//! deterministic integer arithmetic over `(seed, p′, job list)` — no wall
//! clock, no host-thread races — so the emitted [`Decision`] log replays
//! bit for bit (pinned by `tests/replay.rs`).

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};
use tlmm_core::baseline::{baseline_sort, BaselineConfig};
use tlmm_core::nmsort::{nmsort, NmSortConfig};
use tlmm_core::oblivious::{spms_sort, squaresort_sort, ObliviousConfig};
use tlmm_core::SortError;
use tlmm_model::admission::{shrink_to_fit, AdmissionEstimate};
use tlmm_model::params::ParamError;
use tlmm_model::{Engine, ScratchpadParams};
use tlmm_scratchpad::{CancelToken, ExecConfig, ExecConfigError, Executor, TwoLevel};
use tlmm_workloads::{generate, Workload};

/// Element size every service job sorts (the repo's workloads are u64).
const ELEM_BYTES: usize = 8;

/// Priority class of a job. Order matters: lower index = higher priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Latency-sensitive foreground queries: small queue, biggest slot
    /// share, preempts lower classes.
    Interactive,
    /// Throughput work with ordinary expectations.
    Batch,
    /// Scavenger work: runs on one slot, first to yield under pressure.
    Background,
}

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Background];

    /// Stable lowercase name (telemetry lanes, report keys).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }

    /// Index into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::Background => 2,
        }
    }

    /// Transfer slots the class asks for at start (clamped to the pool).
    fn want_slots(self) -> u64 {
        match self {
            Priority::Interactive => 4,
            Priority::Batch => 2,
            Priority::Background => 1,
        }
    }
}

/// One job submitted to the service.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Tenant the job belongs to (quota key).
    pub tenant: u64,
    /// Priority class.
    pub priority: Priority,
    /// Which engine sorts it.
    pub engine: Engine,
    /// Elements to sort (random u64 from `seed`).
    pub n: usize,
    /// Workload seed.
    pub seed: u64,
    /// Virtual-time arrival instant.
    pub arrival: u64,
    /// Absolute virtual-time deadline; `None` = none.
    pub deadline: Option<u64>,
}

/// Why a job was shed at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Could never fit the scratchpad, even fully degraded — resubmitting
    /// later cannot help.
    Infeasible,
    /// Near memory is saturated by running jobs and the class queue is
    /// full; retry after `retry_after`.
    NearSaturated,
    /// The class queue is at capacity; retry after `retry_after`.
    QueueFull,
}

/// Typed admission rejection: the overload answer is never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// Why.
    pub reason: RejectReason,
    /// Virtual-time units after which a retry has a chance (0 = never —
    /// only for [`RejectReason::Infeasible`]).
    pub retry_after: u64,
}

/// Final state of one job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// Ran to completion; output verified sorted.
    Done {
        /// Completion − arrival, in virtual units.
        latency: u64,
        /// Charged far+near bytes the job actually consumed.
        units: u64,
        /// Proactive chunk shrinks applied at admission.
        shrinks: u32,
    },
    /// Shed at admission with a typed rejection.
    Shed(Rejected),
    /// Deadline passed — in queue (`ran == false`) or mid-run via
    /// cooperative cancellation (`ran == true`, partial `units` charged).
    TimedOut {
        /// Did the job start (and get cancelled at a phase boundary)?
        ran: bool,
        /// Charged units before the cancellation point.
        units: u64,
    },
    /// The engine returned a typed error (never a panic).
    Failed {
        /// Display of the underlying [`SortError`].
        error: String,
    },
}

/// What the scheduler decided, when. Flat on purpose: the vendored serde
/// derives only plain structs and unit enums, and a flat row set diffs
/// cleanly in the golden replay file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// Monotonic decision number.
    pub seq: u64,
    /// Virtual time of the decision.
    pub at: u64,
    /// What happened.
    pub kind: DecisionKind,
    /// Job id (submission index).
    pub job: u64,
    /// Tenant of the job.
    pub tenant: u64,
    /// Priority class of the job.
    pub class: Priority,
    /// Slots held after the decision (Start/Preempt), else 0.
    pub slots: u64,
    /// Kind-specific detail: charged units (Complete/TimeOut), retry_after
    /// (Shed), yielded slots (Preempt), admission shrinks (Start), else 0.
    pub note: u64,
}

/// Decision kinds (unit variants — see [`Decision`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionKind {
    /// Admitted and started immediately.
    Start,
    /// Admitted but queued (no slots / near budget right now).
    Queue,
    /// Shed with a typed rejection.
    Shed,
    /// A running job yielded slots to a higher class.
    Preempt,
    /// Ran to verified completion.
    Complete,
    /// Deadline passed (queued or cancelled mid-run).
    TimeOut,
    /// Engine returned a typed error.
    Fail,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Scratchpad geometry shared by all jobs.
    pub params: ScratchpadParams,
    /// Transfer-slot pool `p′` (Theorem 10) leased to running jobs.
    pub slots: u64,
    /// Near-memory bytes admission may reserve (≤ `params.scratchpad_bytes`;
    /// 0 = use the whole scratchpad).
    pub near_budget_bytes: u64,
    /// Max slots any single tenant may lease at once (0 = no cap).
    pub tenant_slot_cap: u64,
    /// Queue capacity per class, `[interactive, batch, background]`.
    /// Interactive is small on purpose: bounding its queue bounds its p99.
    pub queue_cap: [usize; 3],
    /// Seed for the deterministic executor's arbitration tie-breaks.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            params: ScratchpadParams::new(64, 4.0, 64 << 20, 4 << 20)
                .expect("default service params are valid"),
            slots: 8,
            near_budget_bytes: 0,
            tenant_slot_cap: 6,
            queue_cap: [8, 64, 256],
            seed: 0x5EED,
        }
    }
}

/// Errors configuring or constructing the service (jobs themselves never
/// error the service; they fail individually with typed outcomes).
#[derive(Debug)]
pub enum ServiceError {
    /// The scratchpad parameters failed validation.
    BadParams(ParamError),
    /// The executor configuration failed validation.
    BadExec(ExecConfigError),
    /// A service-level knob is out of range.
    BadConfig(&'static str),
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::BadParams(e) => write!(f, "invalid scratchpad parameters: {e}"),
            ServiceError::BadExec(e) => write!(f, "invalid executor config: {e}"),
            ServiceError::BadConfig(r) => write!(f, "invalid service config: {r}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Exact percentile of a **sorted** latency slice: the `⌈q·len⌉`-th order
/// statistic. Returns 0 for an empty slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Per-class outcome summary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClassStats {
    /// Class name.
    pub class: String,
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs completed with verified output.
    pub completed: u64,
    /// Jobs shed at admission (typed).
    pub shed: u64,
    /// Jobs timed out (queued or cancelled mid-run).
    pub timed_out: u64,
    /// Jobs that returned a typed engine error.
    pub failed: u64,
    /// Preemption events where this class yielded slots.
    pub preempted: u64,
    /// Latency percentiles over completed jobs, virtual units.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst completed-job latency.
    pub max_latency: u64,
    /// Charged units of completed jobs — the class's goodput numerator.
    pub goodput_units: u64,
}

/// End-of-run report: per-class stats, the decision log, and the global
/// robustness invariants the soak bench asserts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Stats per class, `[interactive, batch, background]`.
    pub classes: Vec<ClassStats>,
    /// Every scheduling decision, in order.
    pub decisions: Vec<Decision>,
    /// Virtual time of the last event.
    pub makespan: u64,
    /// Sum of charged units over completed jobs (goodput numerator).
    pub goodput_units: u64,
    /// Charged units including cancelled/failed work (throughput).
    pub total_units: u64,
    /// Jobs admitted degraded (proactive chunk shrink).
    pub degraded_admissions: u64,
    /// Post-job scratchpad leak checks performed.
    pub leak_checks: u64,
    /// Leak checks that found residual near bytes — must be 0.
    pub leak_failures: u64,
    /// Slot-yield events (matches the executor's preemption counter).
    pub preemptions: u64,
}

impl ServiceReport {
    /// Stats for `class`.
    pub fn class(&self, p: Priority) -> &ClassStats {
        &self.classes[p.index()]
    }

    /// Completed-job goodput as a fraction of total charged units.
    pub fn goodput_fraction(&self) -> f64 {
        if self.total_units == 0 {
            return 1.0;
        }
        self.goodput_units as f64 / self.total_units as f64
    }
}

// ---------------------------------------------------------------------------
// Scheduler internals
// ---------------------------------------------------------------------------

/// Event ranks at equal times: completions free resources before deadlines
/// fire, deadlines fire before new arrivals are admitted.
const RANK_COMPLETE: u8 = 0;
const RANK_DEADLINE: u8 = 1;
const RANK_ARRIVE: u8 = 2;

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrive(u64),
    Deadline(u64),
    Complete(u64),
}

#[derive(Debug)]
enum Pending {
    Done { units: u64, shrinks: u32 },
    TimedOut { units: u64 },
    Failed { units: u64, error: String },
}

#[derive(Debug)]
struct Running {
    tenant: u64,
    class: Priority,
    slots: u64,
    /// Units left at `last_t`, progressing at `slots` units per tick.
    remaining: u64,
    last_t: u64,
    reserved: u64,
    ev_key: (u64, u8, u64),
    pending: Pending,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Waiting,
    Queued,
    Running,
    Finished,
}

/// The job-queue front end. Construct with [`SortService::new`], feed it a
/// workload with [`SortService::run`], read the [`ServiceReport`].
pub struct SortService {
    cfg: ServiceConfig,
    near_budget: u64,
}

impl SortService {
    /// Validate the configuration and build a service.
    pub fn new(cfg: ServiceConfig) -> Result<Self, ServiceError> {
        cfg.params.validate().map_err(ServiceError::BadParams)?;
        if cfg.slots == 0 {
            return Err(ServiceError::BadConfig("slots must be >= 1"));
        }
        let near_budget = if cfg.near_budget_bytes == 0 {
            cfg.params.scratchpad_bytes
        } else {
            cfg.near_budget_bytes
        };
        if near_budget > cfg.params.scratchpad_bytes {
            return Err(ServiceError::BadConfig(
                "near budget exceeds the scratchpad",
            ));
        }
        Ok(SortService { cfg, near_budget })
    }

    /// Run `jobs` through the service to completion and report. Outcomes
    /// are returned per job (same order as `jobs`) alongside the report.
    pub fn run(
        &self,
        jobs: &[JobRequest],
    ) -> Result<(ServiceReport, Vec<JobOutcome>), ServiceError> {
        let tl = TwoLevel::try_new(self.cfg.params).map_err(|e| match e {
            tlmm_scratchpad::SpError::BadParams(p) => ServiceError::BadParams(p),
            _ => ServiceError::BadConfig("scratchpad construction failed"),
        })?;
        let workers = (self.cfg.slots as usize).max(1);
        let exec = ExecConfig::deterministic(workers, workers, self.cfg.seed);
        let executor = tl.install_executor(exec).map_err(ServiceError::BadExec)?;
        if self.cfg.tenant_slot_cap > 0 {
            executor.set_tenant_slot_cap(Some(self.cfg.tenant_slot_cap as usize));
        }
        let mut st = Sched {
            cfg: &self.cfg,
            near_budget: self.near_budget,
            tl,
            executor,
            jobs,
            state: vec![JobState::Waiting; jobs.len()],
            outcomes: (0..jobs.len())
                .map(|_| JobOutcome::Failed {
                    error: "never scheduled".to_string(),
                })
                .collect(),
            events: BTreeMap::new(),
            seq: 0,
            running: BTreeMap::new(),
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            reserved: 0,
            decisions: Vec::new(),
            decision_seq: 0,
            latencies: [Vec::new(), Vec::new(), Vec::new()],
            preempted: [0; 3],
            degraded_admissions: 0,
            leak_checks: 0,
            leak_failures: 0,
            total_units: 0,
            makespan: 0,
        };
        st.seed_arrivals();
        st.run_loop();
        Ok(st.finish())
    }
}

struct Sched<'a> {
    cfg: &'a ServiceConfig,
    near_budget: u64,
    tl: TwoLevel,
    executor: std::sync::Arc<Executor>,
    jobs: &'a [JobRequest],
    state: Vec<JobState>,
    outcomes: Vec<JobOutcome>,
    events: BTreeMap<(u64, u8, u64), Ev>,
    seq: u64,
    running: BTreeMap<u64, Running>,
    queues: [VecDeque<u64>; 3],
    reserved: u64,
    decisions: Vec<Decision>,
    decision_seq: u64,
    latencies: [Vec<u64>; 3],
    preempted: [u64; 3],
    degraded_admissions: u64,
    leak_checks: u64,
    leak_failures: u64,
    total_units: u64,
    makespan: u64,
}

impl<'a> Sched<'a> {
    fn seed_arrivals(&mut self) {
        for (i, j) in self.jobs.iter().enumerate() {
            let key = (j.arrival, RANK_ARRIVE, self.next_seq());
            self.events.insert(key, Ev::Arrive(i as u64));
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn decide(&mut self, at: u64, kind: DecisionKind, job: u64, slots: u64, note: u64) {
        let j = &self.jobs[job as usize];
        self.decision_seq += 1;
        self.decisions.push(Decision {
            seq: self.decision_seq,
            at,
            kind,
            job,
            tenant: j.tenant,
            class: j.priority,
            slots,
            note,
        });
    }

    fn run_loop(&mut self) {
        while let Some((key, ev)) = self.events.pop_first() {
            let t = key.0;
            self.makespan = self.makespan.max(t);
            match ev {
                Ev::Arrive(id) => self.on_arrive(id, t),
                Ev::Deadline(id) => self.on_deadline(id, t),
                Ev::Complete(id) => self.on_complete(id, t),
            }
        }
    }

    // ---- admission ----------------------------------------------------

    fn on_arrive(&mut self, id: u64, t: u64) {
        let j = &self.jobs[id as usize];
        if let Some(dl) = j.deadline {
            let key = (dl.max(t), RANK_DEADLINE, self.next_seq());
            self.events.insert(key, Ev::Deadline(id));
        }
        // Idle-machine feasibility: a job that cannot fit the whole budget
        // even fully degraded is shed immediately — queueing cannot help.
        let j = &self.jobs[id as usize];
        if shrink_to_fit(
            &self.cfg.params,
            j.engine,
            j.n as u64,
            ELEM_BYTES,
            None,
            self.near_budget,
        )
        .is_none()
        {
            self.shed(id, t, RejectReason::Infeasible, 0);
            return;
        }
        if self.try_start(id, t) {
            return;
        }
        // Queue or shed.
        let class = self.jobs[id as usize].priority;
        let qi = class.index();
        if self.queues[qi].len() < self.cfg.queue_cap[qi] {
            self.queues[qi].push_back(id);
            self.state[id as usize] = JobState::Queued;
            self.decide(t, DecisionKind::Queue, id, 0, 0);
        } else {
            let retry = self.earliest_completion().map_or(1, |c| (c - t).max(1));
            let reason = if self.reserved > 0 {
                RejectReason::NearSaturated
            } else {
                RejectReason::QueueFull
            };
            self.shed(id, t, reason, retry);
        }
    }

    fn shed(&mut self, id: u64, t: u64, reason: RejectReason, retry_after: u64) {
        let class = self.jobs[id as usize].priority;
        tlmm_telemetry::qos::count_shed(class.name());
        tlmm_telemetry::qos::tenant_counter(self.jobs[id as usize].tenant, "shed").incr();
        self.outcomes[id as usize] = JobOutcome::Shed(Rejected {
            reason,
            retry_after,
        });
        self.state[id as usize] = JobState::Finished;
        self.decide(t, DecisionKind::Shed, id, 0, retry_after);
    }

    fn earliest_completion(&self) -> Option<u64> {
        self.events
            .keys()
            .filter(|(_, rank, _)| *rank == RANK_COMPLETE)
            .map(|(t, _, _)| *t)
            .min()
    }

    // ---- starting jobs -------------------------------------------------

    /// Try to start `id` at `t`: reserve near memory (possibly degraded),
    /// lease slots (preempting lower classes for interactive work), and
    /// physically execute. Returns false when resources are unavailable.
    fn try_start(&mut self, id: u64, t: u64) -> bool {
        let j = &self.jobs[id as usize];
        let near_free = self.near_budget - self.reserved;
        let Some(est) = shrink_to_fit(
            &self.cfg.params,
            j.engine,
            j.n as u64,
            ELEM_BYTES,
            None,
            near_free,
        ) else {
            return false;
        };
        let class = j.priority;
        let tenant = j.tenant;
        let want = class.want_slots().min(self.cfg.slots);
        let mut grant = self.executor.try_lease(tenant, want as usize) as u64;
        if grant < want && class == Priority::Interactive {
            self.preempt_lower(t, want - grant);
            grant += self.executor.try_lease(tenant, (want - grant) as usize) as u64;
        }
        if grant == 0 {
            return false;
        }
        self.start(id, t, est, grant);
        true
    }

    /// Demand `needed` slots from running lower-class jobs: background
    /// first, then batch, youngest victims first — each yields down to one
    /// slot at this (virtual-time) phase boundary.
    fn preempt_lower(&mut self, t: u64, mut needed: u64) {
        let mut victims: Vec<u64> = self
            .running
            .iter()
            .filter(|(_, r)| r.class != Priority::Interactive && r.slots > 1)
            .map(|(id, _)| *id)
            .collect();
        victims.sort_by_key(|id| {
            let r = &self.running[id];
            (std::cmp::Reverse(r.class.index()), std::cmp::Reverse(*id))
        });
        for vid in victims {
            if needed == 0 {
                break;
            }
            let (tenant, class, yielded, new_slots) = {
                let r = self.running.get_mut(&vid).expect("victim is running");
                let yielded = (r.slots - 1).min(needed);
                // Bank progress at the old rate before the rate changes.
                let done = (t - r.last_t).saturating_mul(r.slots);
                r.remaining = r.remaining.saturating_sub(done);
                r.last_t = t;
                r.slots -= yielded;
                (r.tenant, r.class, yielded, r.slots)
            };
            self.executor.release_lease(tenant, yielded as usize);
            self.executor.note_preemption(tenant, yielded as usize);
            tlmm_telemetry::qos::count_preempt(class.name());
            self.preempted[class.index()] += yielded.min(1);
            self.reschedule_completion(vid, t);
            self.decide(t, DecisionKind::Preempt, vid, new_slots, yielded);
            needed -= yielded;
        }
    }

    fn reschedule_completion(&mut self, id: u64, t: u64) {
        let (old_key, due) = {
            let r = &self.running[&id];
            (r.ev_key, t + (r.remaining.div_ceil(r.slots)).max(1))
        };
        self.events.remove(&old_key);
        let key = (due, RANK_COMPLETE, self.next_seq());
        self.events.insert(key, Ev::Complete(id));
        self.running.get_mut(&id).expect("running").ev_key = key;
    }

    /// Commit a start: reserve, execute physically, schedule completion.
    fn start(&mut self, id: u64, t: u64, est: AdmissionEstimate, slots: u64) {
        let j = &self.jobs[id as usize];
        self.reserved += est.near_peak_bytes;
        if est.shrinks > 0 {
            self.degraded_admissions += 1;
            tlmm_telemetry::counter!("service.degraded_admissions").incr();
        }
        tlmm_telemetry::qos::tenant_counter(j.tenant, "started").incr();
        self.state[id as usize] = JobState::Running;
        self.decide(t, DecisionKind::Start, id, slots, est.shrinks as u64);

        let (result, units) = self.execute(id, t, slots, est.chunk_elems);
        self.total_units += units;
        let (pending, due) = match result {
            Ok(()) => (
                Pending::Done {
                    units,
                    shrinks: est.shrinks,
                },
                t + units.div_ceil(slots).max(1),
            ),
            Err(SortError::Canceled) => {
                // The unit budget tripped at a phase boundary: the job ends
                // at its deadline, partial charges kept.
                let dl = self.jobs[id as usize].deadline.unwrap_or(t);
                (Pending::TimedOut { units }, dl.max(t + 1))
            }
            Err(e) => (
                Pending::Failed {
                    units,
                    error: e.to_string(),
                },
                t + units.div_ceil(slots).max(1),
            ),
        };
        let key = (due, RANK_COMPLETE, self.next_seq());
        self.events.insert(key, Ev::Complete(id));
        self.running.insert(
            id,
            Running {
                tenant: self.jobs[id as usize].tenant,
                class: self.jobs[id as usize].priority,
                slots,
                remaining: units,
                last_t: t,
                reserved: est.near_peak_bytes,
                ev_key: key,
                pending,
            },
        );
    }

    /// Physically execute job `id` on the shared scratchpad. Returns the
    /// engine result and the charged far+near bytes (the ledger delta).
    fn execute(
        &mut self,
        id: u64,
        t: u64,
        slots: u64,
        chunk_elems: usize,
    ) -> (Result<(), SortError>, u64) {
        let j = &self.jobs[id as usize];
        let before = self.tl.ledger().snapshot();
        let base_units = before.far_bytes + before.near_bytes;
        if let Some(dl) = j.deadline {
            // The job may charge at most slots × (deadline − now) units
            // before its deadline; the token trips the first phase boundary
            // past that budget.
            let budget = dl.saturating_sub(t).saturating_mul(slots);
            self.tl
                .install_cancel(CancelToken::with_unit_budget(budget));
        }
        let input = self
            .tl
            .far_from_vec(generate(Workload::UniformU64, j.n, j.seed));
        let lanes = slots as usize;
        let result: Result<(), SortError> = match j.engine {
            Engine::NmSort | Engine::NmSortDma => {
                let cfg = NmSortConfig {
                    sim_lanes: lanes,
                    chunk_elems: Some(chunk_elems.max(2)),
                    threads: 1,
                    use_dma: j.engine == Engine::NmSortDma,
                    ..Default::default()
                };
                nmsort(&self.tl, input, &cfg).and_then(|r| verify(r.output.as_slice_uncharged()))
            }
            Engine::Baseline => {
                let cfg = BaselineConfig {
                    sim_lanes: lanes,
                    threads: 1,
                    ..Default::default()
                };
                baseline_sort(&self.tl, input, &cfg)
                    .and_then(|r| verify(r.output.as_slice_uncharged()))
            }
            Engine::Spms | Engine::SquareSort => {
                let cfg = ObliviousConfig {
                    lanes,
                    threads: 1,
                    ..Default::default()
                };
                let run = if j.engine == Engine::Spms {
                    spms_sort(&self.tl, input, &cfg)
                } else {
                    squaresort_sort(&self.tl, input, &cfg)
                };
                run.and_then(|(out, _)| verify(out.as_slice_uncharged()))
            }
        };
        self.tl.clear_cancel();
        // The arena must be reusable by the next job no matter how this
        // one ended — cancellation unwinds through NearArray RAII.
        self.leak_checks += 1;
        if self.tl.near_used_bytes() != 0 {
            self.leak_failures += 1;
            tlmm_telemetry::counter!("service.leak_failures").incr();
        }
        let after = self.tl.ledger().snapshot();
        let units = (after.far_bytes + after.near_bytes).saturating_sub(base_units);
        (result, units)
    }

    // ---- deadlines and completions ------------------------------------

    fn on_deadline(&mut self, id: u64, t: u64) {
        if self.state[id as usize] != JobState::Queued {
            // Running jobs are bounded by their cancel token; finished or
            // shed jobs need nothing.
            return;
        }
        let qi = self.jobs[id as usize].priority.index();
        self.queues[qi].retain(|&q| q != id);
        self.state[id as usize] = JobState::Finished;
        self.outcomes[id as usize] = JobOutcome::TimedOut {
            ran: false,
            units: 0,
        };
        self.decide(t, DecisionKind::TimeOut, id, 0, 0);
    }

    fn on_complete(&mut self, id: u64, t: u64) {
        let r = self.running.remove(&id).expect("completing job runs");
        self.executor.release_lease(r.tenant, r.slots as usize);
        self.reserved -= r.reserved;
        self.state[id as usize] = JobState::Finished;
        let j = &self.jobs[id as usize];
        let latency = t - j.arrival;
        match r.pending {
            Pending::Done { units, shrinks } => {
                tlmm_telemetry::qos::class_latency(j.priority.name()).record(latency);
                tlmm_telemetry::qos::tenant_counter(j.tenant, "completed").incr();
                self.latencies[j.priority.index()].push(latency);
                self.outcomes[id as usize] = JobOutcome::Done {
                    latency,
                    units,
                    shrinks,
                };
                self.decide(t, DecisionKind::Complete, id, 0, units);
            }
            Pending::TimedOut { units } => {
                self.outcomes[id as usize] = JobOutcome::TimedOut { ran: true, units };
                self.decide(t, DecisionKind::TimeOut, id, 0, units);
            }
            Pending::Failed { units, error } => {
                self.outcomes[id as usize] = JobOutcome::Failed { error };
                self.decide(t, DecisionKind::Fail, id, 0, units);
            }
        }
        self.drain_queues(t);
    }

    /// Start queued work freed-up resources now allow, highest class
    /// first, FIFO within a class (head-of-line: a too-big head blocks its
    /// class — deliberate, so admission order within a class is preserved).
    fn drain_queues(&mut self, t: u64) {
        for class in Priority::ALL {
            let qi = class.index();
            while let Some(&head) = self.queues[qi].front() {
                if !self.try_start(head, t) {
                    break;
                }
                self.queues[qi].pop_front();
            }
        }
    }

    // ---- reporting -----------------------------------------------------

    fn finish(mut self) -> (ServiceReport, Vec<JobOutcome>) {
        let mut classes = Vec::with_capacity(3);
        for class in Priority::ALL {
            let qi = class.index();
            let mut lats = std::mem::take(&mut self.latencies[qi]);
            lats.sort_unstable();
            let mut cs = ClassStats {
                class: class.name().to_string(),
                p50: percentile(&lats, 0.50),
                p95: percentile(&lats, 0.95),
                p99: percentile(&lats, 0.99),
                max_latency: lats.last().copied().unwrap_or(0),
                preempted: self.preempted[qi],
                ..Default::default()
            };
            for (i, j) in self.jobs.iter().enumerate() {
                if j.priority != class {
                    continue;
                }
                cs.submitted += 1;
                match &self.outcomes[i] {
                    JobOutcome::Done { units, .. } => {
                        cs.completed += 1;
                        cs.goodput_units += units;
                    }
                    JobOutcome::Shed(_) => cs.shed += 1,
                    JobOutcome::TimedOut { .. } => cs.timed_out += 1,
                    JobOutcome::Failed { .. } => cs.failed += 1,
                }
            }
            classes.push(cs);
        }
        let goodput_units = classes.iter().map(|c| c.goodput_units).sum();
        let report = ServiceReport {
            classes,
            decisions: self.decisions,
            makespan: self.makespan,
            goodput_units,
            total_units: self.total_units,
            degraded_admissions: self.degraded_admissions,
            leak_checks: self.leak_checks,
            leak_failures: self.leak_failures,
            preemptions: self.executor.preemptions(),
        };
        (report, self.outcomes)
    }
}

fn verify(out: &[u64]) -> Result<(), SortError> {
    if out.windows(2).all(|w| w[0] <= w[1]) {
        Ok(())
    } else {
        Err(SortError::BadConfig {
            reason: "service job produced unsorted output",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            params: ScratchpadParams::new(64, 4.0, 1 << 20, 64 << 10).unwrap(),
            slots: 8,
            near_budget_bytes: 0,
            tenant_slot_cap: 6,
            queue_cap: [4, 16, 64],
            seed: 7,
        }
    }

    fn job(
        tenant: u64,
        priority: Priority,
        engine: Engine,
        n: usize,
        arrival: u64,
        deadline: Option<u64>,
    ) -> JobRequest {
        JobRequest {
            tenant,
            priority,
            engine,
            n,
            seed: tenant * 31 + n as u64,
            arrival,
            deadline,
        }
    }

    #[test]
    fn every_engine_completes_and_leaves_no_leak() {
        let svc = SortService::new(small_cfg()).unwrap();
        let jobs: Vec<JobRequest> = Engine::ALL
            .iter()
            .enumerate()
            .map(|(i, &e)| job(i as u64, Priority::Batch, e, 5_000, i as u64 * 10, None))
            .collect();
        let (rep, outcomes) = svc.run(&jobs).unwrap();
        assert_eq!(rep.leak_failures, 0);
        assert_eq!(rep.leak_checks, Engine::ALL.len() as u64);
        for o in &outcomes {
            assert!(matches!(o, JobOutcome::Done { .. }), "{o:?}");
        }
        assert_eq!(rep.class(Priority::Batch).completed, 5);
        assert!(rep.goodput_units > 0);
        assert_eq!(rep.goodput_units, rep.total_units);
    }

    #[test]
    fn queued_deadline_times_out_without_running() {
        let svc = SortService::new(ServiceConfig {
            slots: 1,
            ..small_cfg()
        })
        .unwrap();
        // Job 0 hogs the single slot; job 1's deadline passes while queued.
        let jobs = vec![
            job(0, Priority::Batch, Engine::NmSort, 50_000, 0, None),
            job(1, Priority::Batch, Engine::NmSort, 50_000, 1, Some(5)),
        ];
        let (rep, outcomes) = svc.run(&jobs).unwrap();
        assert!(matches!(
            outcomes[1],
            JobOutcome::TimedOut {
                ran: false,
                units: 0
            }
        ));
        assert!(matches!(outcomes[0], JobOutcome::Done { .. }));
        assert_eq!(rep.class(Priority::Batch).timed_out, 1);
        assert_eq!(rep.leak_failures, 0);
    }

    #[test]
    fn running_deadline_cancels_at_a_phase_boundary() {
        let svc = SortService::new(small_cfg()).unwrap();
        // Deadline so tight the unit budget trips mid-run; NMsort checks
        // at every Phase-1 chunk boundary.
        let jobs = vec![job(0, Priority::Batch, Engine::NmSort, 200_000, 0, Some(2))];
        let (rep, outcomes) = svc.run(&jobs).unwrap();
        match &outcomes[0] {
            JobOutcome::TimedOut { ran: true, units } => {
                assert!(*units > 0, "partial work stays charged");
            }
            other => panic!("expected mid-run timeout, got {other:?}"),
        }
        assert_eq!(
            rep.leak_failures, 0,
            "cancellation must not leak near memory"
        );
        assert_eq!(rep.class(Priority::Batch).timed_out, 1);
    }

    #[test]
    fn overload_sheds_typed_with_retry_after() {
        let svc = SortService::new(ServiceConfig {
            slots: 1,
            queue_cap: [0, 0, 0],
            ..small_cfg()
        })
        .unwrap();
        let jobs = vec![
            job(0, Priority::Batch, Engine::NmSort, 50_000, 0, None),
            job(1, Priority::Batch, Engine::NmSort, 50_000, 1, None),
        ];
        let (rep, outcomes) = svc.run(&jobs).unwrap();
        match &outcomes[1] {
            JobOutcome::Shed(r) => {
                assert!(r.retry_after > 0, "shed must carry a retry hint");
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(rep.class(Priority::Batch).shed, 1);
    }

    #[test]
    fn infeasible_jobs_are_refused_not_oomed() {
        let svc = SortService::new(ServiceConfig {
            near_budget_bytes: 4 << 10,
            ..small_cfg()
        })
        .unwrap();
        // SPMS on 100k elements wants far more than 4 KiB of near budget
        // and has no shrink ladder.
        let jobs = vec![job(0, Priority::Batch, Engine::Spms, 100_000, 0, None)];
        let (_rep, outcomes) = svc.run(&jobs).unwrap();
        match &outcomes[0] {
            JobOutcome::Shed(r) => assert_eq!(r.reason, RejectReason::Infeasible),
            other => panic!("expected infeasible shed, got {other:?}"),
        }
    }

    #[test]
    fn saturated_near_budget_degrades_admission() {
        // Budget below NMsort's clean working set: admission must apply
        // the chunk-shrink ladder proactively, and the job must still
        // complete with verified output.
        let params = ScratchpadParams::new(64, 4.0, 1 << 20, 64 << 10).unwrap();
        let clean = tlmm_model::admission::estimate(&params, Engine::NmSort, 60_000, 8, None);
        let svc = SortService::new(ServiceConfig {
            params,
            near_budget_bytes: clean.near_peak_bytes / 2,
            ..small_cfg()
        })
        .unwrap();
        let jobs = vec![job(0, Priority::Batch, Engine::NmSort, 60_000, 0, None)];
        let (rep, outcomes) = svc.run(&jobs).unwrap();
        match &outcomes[0] {
            JobOutcome::Done { shrinks, .. } => assert!(*shrinks > 0),
            other => panic!("expected degraded completion, got {other:?}"),
        }
        assert_eq!(rep.degraded_admissions, 1);
        assert_eq!(rep.leak_failures, 0);
    }

    #[test]
    fn interactive_arrival_preempts_background_slots() {
        let svc = SortService::new(ServiceConfig {
            slots: 4,
            ..small_cfg()
        })
        .unwrap();
        // Two background jobs on separate tenants lease 1 slot each; two
        // batch jobs take 2+1; then an interactive job arrives wanting 4.
        let jobs = vec![
            job(0, Priority::Batch, Engine::NmSort, 80_000, 0, None),
            job(1, Priority::Batch, Engine::NmSort, 80_000, 0, None),
            job(2, Priority::Interactive, Engine::NmSort, 10_000, 1, None),
        ];
        let (rep, outcomes) = svc.run(&jobs).unwrap();
        assert!(
            rep.preemptions > 0,
            "interactive pressure must preempt lower-class slots: {:?}",
            rep.decisions
        );
        assert!(rep
            .decisions
            .iter()
            .any(|d| d.kind == DecisionKind::Preempt));
        for o in &outcomes {
            assert!(matches!(o, JobOutcome::Done { .. }), "{o:?}");
        }
    }

    #[test]
    fn decisions_replay_bit_for_bit() {
        let cfg = small_cfg();
        let mk = || {
            let jobs: Vec<JobRequest> = (0..12)
                .map(|i| {
                    let class = Priority::ALL[i % 3];
                    let engine = Engine::ALL[i % Engine::ALL.len()];
                    job(
                        (i % 4) as u64,
                        class,
                        engine,
                        4_000 + i * 700,
                        (i as u64) * 3,
                        if i % 4 == 0 {
                            Some(i as u64 * 3 + 9_000_000)
                        } else {
                            None
                        },
                    )
                })
                .collect();
            let svc = SortService::new(cfg.clone()).unwrap();
            svc.run(&jobs).unwrap().0
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.goodput_units, b.goodput_units);
    }

    #[test]
    fn percentile_is_exact_order_statistic() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn bad_configs_are_typed() {
        assert!(matches!(
            SortService::new(ServiceConfig {
                slots: 0,
                ..small_cfg()
            }),
            Err(ServiceError::BadConfig(_))
        ));
        assert!(matches!(
            SortService::new(ServiceConfig {
                near_budget_bytes: u64::MAX,
                ..small_cfg()
            }),
            Err(ServiceError::BadConfig(_))
        ));
    }
}
