//! End-to-end pipeline tests: workload → sort on the two-level runtime →
//! trace replay on the Fig. 4 machine → Table-I-shaped assertions.

use two_level_mem::analysis::compare_runs;
use two_level_mem::model::CostSnapshot;
use two_level_mem::prelude::*;

const N: usize = 300_000;
const LANES: usize = 64;

fn params() -> ScratchpadParams {
    // Small enough that N is multi-chunk: M = 4 MiB (524k u64), Z = 256 KiB.
    ScratchpadParams::new(64, 4.0, 4 << 20, 256 << 10).unwrap()
}

fn nmsort_run(n: usize, seed: u64) -> (tlmm_scratchpad::PhaseTrace, CostSnapshot) {
    let tl = TwoLevel::new(params());
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, seed));
    let r = nmsort(
        &tl,
        input,
        &NmSortConfig {
            sim_lanes: LANES,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r
        .output
        .as_slice_uncharged()
        .windows(2)
        .all(|w| w[0] <= w[1]));
    assert!(
        n < 250_000 || r.chunks > 1,
        "paper-shaped runs must exercise the multi-chunk path"
    );
    (tl.take_trace(), tl.ledger().snapshot())
}

fn baseline_run(n: usize, seed: u64) -> (tlmm_scratchpad::PhaseTrace, CostSnapshot) {
    let tl = TwoLevel::new(params());
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, seed));
    let r = baseline_sort(
        &tl,
        input,
        &BaselineConfig {
            sim_lanes: LANES,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r
        .output
        .as_slice_uncharged()
        .windows(2)
        .all(|w| w[0] <= w[1]));
    (tl.take_trace(), tl.ledger().snapshot())
}

#[test]
fn nmsort_moves_less_dram_traffic_than_baseline() {
    let (_, nm) = nmsort_run(N, 1);
    let (_, base) = baseline_run(N, 1);
    assert_eq!(
        base.near_blocks(),
        0,
        "baseline never touches the scratchpad"
    );
    assert!(
        nm.far_bytes < base.far_bytes,
        "NMsort far {} should be below baseline {}",
        nm.far_bytes,
        base.far_bytes
    );
    assert!(
        nm.near_bytes > nm.far_bytes,
        "NMsort works mostly in-scratchpad"
    );
}

#[test]
fn simulated_time_improves_with_rho_and_beats_baseline_when_bound() {
    let (nm_trace, _) = nmsort_run(N, 2);
    let (base_trace, _) = baseline_run(N, 2);
    let base_sim = simulate_flow(&base_trace, &MachineConfig::fig4(256, 2.0));
    let mut prev = f64::INFINITY;
    for rho in [2.0, 4.0, 8.0] {
        let sim = simulate_flow(&nm_trace, &MachineConfig::fig4(256, rho));
        assert!(
            sim.seconds <= prev * 1.0001,
            "time must not increase with rho ({rho}: {} vs {prev})",
            sim.seconds
        );
        prev = sim.seconds;
    }
    // At 8x on the memory-bound 256-core node NMsort must win.
    let nm8 = simulate_flow(&nm_trace, &MachineConfig::fig4(256, 8.0));
    let c = compare_runs(&base_sim, &nm8);
    assert!(
        c.speedup > 1.0,
        "NMsort at 8x must beat the baseline, got {:.3}",
        c.speedup
    );
}

#[test]
fn access_counts_shape_matches_table1() {
    let (nm_trace, _) = nmsort_run(N, 3);
    let (base_trace, _) = baseline_run(N, 3);
    let m = MachineConfig::fig4(256, 4.0);
    let nm = simulate_flow(&nm_trace, &m);
    let base = simulate_flow(&base_trace, &m);
    assert_eq!(base.near_accesses, 0);
    // Paper: GNU sort makes about twice the DRAM accesses of NMsort.
    let ratio = base.far_accesses as f64 / nm.far_accesses as f64;
    assert!(ratio > 1.3, "DRAM access ratio {ratio} too low");
    // Paper: NMsort's scratchpad accesses ~2-3 per DRAM access.
    let npf = nm.near_accesses as f64 / nm.far_accesses as f64;
    assert!(npf > 1.5 && npf < 4.5, "near/far {npf}");
}

#[test]
fn trace_volumes_are_deterministic_per_seed() {
    let (a, sa) = nmsort_run(100_000, 9);
    let (b, sb) = nmsort_run(100_000, 9);
    assert_eq!(sa, sb, "ledger must be reproducible");
    assert_eq!(a.total(), b.total());
    assert_eq!(a.phases.len(), b.phases.len());
}

#[test]
fn seqsort_and_nmsort_agree_with_std() {
    let tl = TwoLevel::new(params());
    let data = generate(Workload::Zipf(1.1), 150_000, 4);
    let mut expect = data.clone();
    expect.sort_unstable();

    let input = tl.far_from_vec(data.clone());
    let (out, _) = seq_scratchpad_sort(&tl, input, &SeqSortConfig::default()).unwrap();
    assert_eq!(out.as_slice_uncharged(), expect.as_slice());

    let input = tl.far_from_vec(data);
    let r = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
    assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
}

#[test]
fn all_workloads_sort_correctly_end_to_end() {
    let tl = TwoLevel::new(params());
    for w in [
        Workload::UniformU64,
        Workload::Sorted,
        Workload::Reverse,
        Workload::NearlySorted(0.05),
        Workload::FewDistinct(7),
        Workload::Zipf(1.2),
        Workload::AllEqual,
    ] {
        let data = generate(w, 120_000, 5);
        let mut expect = data.clone();
        expect.sort_unstable();
        let input = tl.far_from_vec(data);
        let r = nmsort(
            &tl,
            input,
            &NmSortConfig {
                sim_lanes: 16,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            r.output.as_slice_uncharged(),
            expect.as_slice(),
            "workload {w:?}"
        );
    }
}

#[test]
fn oversized_scratchpad_requests_fail_cleanly() {
    let tl = TwoLevel::new(params());
    // Two 300k-element buffers (4.8 MB) cannot fit the 4 MiB scratchpad.
    let input = tl.far_from_vec(generate(Workload::UniformU64, 300_000, 6));
    let err = nmsort(
        &tl,
        input,
        &NmSortConfig {
            chunk_elems: Some(300_000),
            ..Default::default()
        },
    );
    assert!(err.is_err());
}
