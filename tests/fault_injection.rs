//! End-to-end fault-injection sweeps: NMsort must degrade gracefully —
//! sorted output (differential vs `slice::sort`), no panics, every fired
//! fault visible as a degradation record, and honest accounting (a degraded
//! run's far traffic is never below the clean run's).
//!
//! The default sweep is small enough for every CI run; the 100-seed × 1M
//! acceptance sweep is `#[ignore]`d and exercised by the nightly job
//! (`cargo test --release -- --ignored`).

use two_level_mem::prelude::*;

/// Experiment geometry shared by the sweeps: small enough to run many
/// seeds, large enough to be multi-chunk (so both phases and their
/// degradation ladders execute).
fn sweep_params() -> ScratchpadParams {
    ScratchpadParams::new(64, 3.0, 1 << 20, 64 << 10).unwrap()
}

struct SweepRun {
    far_bytes: u64,
    far_read_blocks: u64,
    far_write_blocks: u64,
    near_bytes: u64,
    trace_near_bytes: u64,
    trace_faults: u64,
    faults_injected: u64,
    degraded: bool,
}

/// One nmsort run, differential-checked against `slice::sort`. Panics (and
/// so fails the sweep) on any mis-sort.
fn run_once(v: Vec<u64>, chunk: usize, fault_seed: Option<u64>) -> SweepRun {
    let tl = TwoLevel::new(sweep_params());
    if let Some(seed) = fault_seed {
        tl.install_fault_plan(FaultPlan::seeded(seed));
    }
    let mut expect = v.clone();
    expect.sort_unstable();
    let input = tl.far_from_vec(v);
    let cfg = NmSortConfig {
        sim_lanes: 8,
        chunk_elems: Some(chunk),
        ..Default::default()
    };
    let r = nmsort(&tl, input, &cfg).expect("nmsort degrades, never fails");
    assert_eq!(
        r.output.as_slice_uncharged(),
        expect.as_slice(),
        "differential mismatch (fault_seed {fault_seed:?})"
    );
    let ledger = tl.ledger().snapshot();
    let trace = tl.take_trace();
    SweepRun {
        far_bytes: ledger.far_bytes,
        far_read_blocks: ledger.far_read_blocks,
        far_write_blocks: ledger.far_write_blocks,
        near_bytes: ledger.near_bytes,
        trace_near_bytes: trace.total().near_bytes(),
        trace_faults: trace.faults(),
        faults_injected: tl.faults_injected(),
        degraded: r.degradations.any(),
    }
}

fn seed_sweep(n: usize, seeds: std::ops::Range<u64>) {
    // Cap the chunk so two chunk buffers always fit the 1 MiB sweep
    // scratchpad, however large the input (50k elems × 8 B × 2 < 1 MiB).
    let chunk = (n / 6).min(50_000);
    let clean = run_once(generate(Workload::UniformU64, n, 42), chunk, None);
    assert_eq!(clean.faults_injected, 0);
    for seed in seeds {
        let run = run_once(generate(Workload::UniformU64, n, 42), chunk, Some(seed));
        // Honest accounting: injected faults only ever add far traffic.
        assert!(
            run.far_bytes >= clean.far_bytes,
            "seed {seed}: degraded far bytes {} below clean {}",
            run.far_bytes,
            clean.far_bytes
        );
        // No silent faults: anything the injector fired shows up as a
        // degradation record or a trace fault event.
        if run.faults_injected > 0 {
            assert!(
                run.degraded || run.trace_faults > 0,
                "seed {seed}: {} faults fired without a degradation record",
                run.faults_injected
            );
        }
    }
}

#[test]
fn fault_sweep_small() {
    seed_sweep(200_000, 0..8);
}

/// The acceptance sweep: 100 seeds at 1M elements. Roughly a minute of
/// release-mode work, so nightly-only.
#[test]
#[ignore = "nightly acceptance sweep: run with cargo test --release -- --ignored"]
fn fault_sweep_acceptance_100_seeds() {
    seed_sweep(1_000_000, 0..100);
}

/// The oversized-bucket DRAM-direct path is a *data-driven* degradation:
/// duplicate-heavy inputs overflow one bucket past the scratchpad batch
/// and Phase 2 must stream it from far memory. Verified via the report and
/// its telemetry counters rather than eyeballing.
#[test]
fn oversized_bucket_fallback_fires_and_sorts() {
    let n = 120_000;
    let v = generate(Workload::FewDistinct(2), n, 7);
    let tl = TwoLevel::new(sweep_params());
    let mut expect = v.clone();
    expect.sort_unstable();
    let input = tl.far_from_vec(v);
    let cfg = NmSortConfig {
        sim_lanes: 4,
        chunk_elems: Some(n / 6),
        threads: 1,
        ..Default::default()
    };
    let r = nmsort(&tl, input, &cfg).expect("oversized buckets degrade, not fail");
    assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
    assert!(
        r.oversized_buckets > 0,
        "two distinct values across {n} elems must overflow a bucket"
    );
    assert!(
        r.degradations.dram_direct_parts > 0,
        "oversized buckets with too few keys to sub-split stream from DRAM"
    );
    assert!(r.degradations.any());
}

/// Ledger floor: sorting N 8-byte elements through the scratchpad reads
/// the input once in Phase 1 and once in Phase 2 and writes it back twice,
/// so far reads AND far writes are each at least ⌈2·N·8 / B⌉ blocks — even
/// (especially) on degraded runs. Near traffic recorded in the trace must
/// also be consistent with the ledger: trace volumes only ever inflate.
#[test]
fn ledger_floor_holds_clean_and_degraded() {
    let n = 150_000usize;
    let block = sweep_params().block_bytes;
    let floor = (2 * n as u64 * 8).div_ceil(block);
    for fault_seed in [None, Some(3), Some(17)] {
        let run = run_once(generate(Workload::UniformU64, n, 9), n / 5, fault_seed);
        assert!(
            run.far_read_blocks >= floor,
            "far reads {} below 2N floor {floor} (fault_seed {fault_seed:?})",
            run.far_read_blocks
        );
        assert!(
            run.far_write_blocks >= floor,
            "far writes {} below 2N floor {floor} (fault_seed {fault_seed:?})",
            run.far_write_blocks
        );
        assert!(
            run.trace_near_bytes >= run.near_bytes,
            "trace near bytes {} below ledger {} (fault_seed {fault_seed:?})",
            run.trace_near_bytes,
            run.near_bytes
        );
    }
}

/// Sweep cell with the radix kernel verifiably engaged: the sweep geometry
/// (64 KiB scratchpad, 8 lanes) forms runs of ≥256 `u64`s, which is the
/// kernel layer's radix threshold, so faulted Phase-1 chunk sorts run on
/// the radix path. The kernels must not change fault semantics: output
/// still sorted (differential-checked inside `run_once`), degraded far
/// traffic still ≥ clean.
#[test]
fn fault_sweep_with_radix_kernels_engaged() {
    let radix_sorts = || {
        tlmm_telemetry::registry()
            .counter("core.kernels.radix_sorts")
            .get()
    };
    let n = 200_000;
    let chunk = n / 6;
    let before = radix_sorts();
    let clean = run_once(generate(Workload::UniformU64, n, 42), chunk, None);
    assert!(
        radix_sorts() > before,
        "sweep geometry must engage the radix kernel (runs ≥ RADIX_MIN_LEN)"
    );
    for seed in 0..4 {
        let mid = radix_sorts();
        let run = run_once(generate(Workload::UniformU64, n, 42), chunk, Some(seed));
        assert!(
            radix_sorts() > mid,
            "seed {seed}: faulted run must still take the radix kernel path"
        );
        assert!(
            run.far_bytes >= clean.far_bytes,
            "seed {seed}: degraded far bytes {} below clean {} with kernels on",
            run.far_bytes,
            clean.far_bytes
        );
    }
}

/// Dispatch one engine over `v` on an existing scratchpad, returning the
/// sorted output (copied out) or the typed error.
fn run_engine(tl: &TwoLevel, engine: Engine, v: Vec<u64>) -> Result<Vec<u64>, SortError> {
    let input = tl.far_from_vec(v);
    match engine {
        Engine::NmSort | Engine::NmSortDma => {
            let cfg = NmSortConfig {
                sim_lanes: 4,
                threads: 1,
                use_dma: engine == Engine::NmSortDma,
                ..Default::default()
            };
            nmsort(tl, input, &cfg).map(|r| r.output.as_slice_uncharged().to_vec())
        }
        Engine::Baseline => {
            let cfg = BaselineConfig {
                sim_lanes: 4,
                threads: 1,
                ..Default::default()
            };
            baseline_sort(tl, input, &cfg).map(|r| r.output.as_slice_uncharged().to_vec())
        }
        Engine::Spms | Engine::SquareSort => {
            let cfg = ObliviousConfig {
                lanes: 4,
                threads: 1,
                ..Default::default()
            };
            let run = if engine == Engine::Spms {
                spms_sort(tl, input, &cfg)
            } else {
                squaresort_sort(tl, input, &cfg)
            };
            run.map(|(out, _)| out.as_slice_uncharged().to_vec())
        }
    }
}

/// Ladder exhaustion, per engine: under maximum fault hostility (every
/// probabilistic roll fires) and under a fault budget that exhausts
/// mid-ladder, every engine must return either a *sorted* output or a
/// *typed* [`SortError`] — never panic — and must leave the scratchpad
/// arena empty and reusable either way.
#[test]
fn ladder_exhaustion_is_typed_for_every_engine() {
    let hostile = FaultPlan {
        near_alloc_fail_permille: 1000,
        transfer_fail_permille: 1000,
        stage_fail_permille: 1000,
        transfer_delay_permille: 0,
        dma_abort_permille: 1000,
        ..FaultPlan::none(13)
    };
    let plans: [(&str, FaultPlan); 3] = [
        ("unbounded hostility", hostile.clone()),
        (
            "budget exhausts mid-ladder",
            FaultPlan {
                max_faults: Some(3),
                ..hostile.clone()
            },
        ),
        (
            "budget already exhausted",
            FaultPlan {
                max_faults: Some(0),
                ..hostile
            },
        ),
    ];
    let n = 60_000;
    let mut expect = generate(Workload::UniformU64, n, 11);
    expect.sort_unstable();
    for &engine in Engine::ALL.iter() {
        for (label, plan) in &plans {
            let tl = TwoLevel::new(sweep_params());
            tl.install_fault_plan(plan.clone());
            let v = generate(Workload::UniformU64, n, 11);
            match run_engine(&tl, engine, v) {
                Ok(out) => assert_eq!(
                    out,
                    expect,
                    "{}: {label}: degraded run must still sort",
                    engine.name()
                ),
                Err(e) => {
                    // Typed by construction; it must not be the cancellation
                    // variant (no token installed) and must leave the arena
                    // reusable for the next job.
                    assert!(
                        !e.is_canceled(),
                        "{}: {label}: spurious cancellation: {e}",
                        engine.name()
                    );
                }
            }
            assert_eq!(
                tl.near_used_bytes(),
                0,
                "{}: {label}: ladder exit leaked near bytes",
                engine.name()
            );
            // Arena reusability: a clean follow-up job on the SAME
            // scratchpad still sorts.
            tl.install_fault_plan(FaultPlan::none(0));
            let again = run_engine(&tl, engine, generate(Workload::UniformU64, n, 11))
                .expect("clean rerun on the same arena succeeds");
            assert_eq!(
                again,
                expect,
                "{}: {label}: arena unusable after ladder",
                engine.name()
            );
        }
    }
}

/// A plan with explicit `fail_nth` triggers is fully deterministic: two
/// identical runs degrade identically, byte for byte.
#[test]
fn injection_is_deterministic() {
    let go = || {
        let tl = TwoLevel::new(sweep_params());
        tl.install_fault_plan(FaultPlan::seeded(99));
        let input = tl.far_from_vec(generate(Workload::UniformU64, 100_000, 5));
        let cfg = NmSortConfig {
            sim_lanes: 4,
            chunk_elems: Some(20_000),
            threads: 1,
            ..Default::default()
        };
        let r = nmsort(&tl, input, &cfg).unwrap();
        (
            tl.faults_injected(),
            r.degradations,
            tl.ledger().snapshot().far_bytes,
        )
    };
    let a = go();
    let b = go();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}
