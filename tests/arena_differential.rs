//! Differential suite over the arena-backed engines: every engine, over
//! every workload shape, with and without an injected fault plan, must
//! agree with `slice::sort` — on ONE shared scratchpad that is reused
//! for all cases, so a single leaked arena byte or un-retired transfer
//! in any case poisons every case after it.

use two_level_mem::prelude::*;

use tlmm_testkit::SHAPES;

const N: usize = 12_000;

fn run_engine(tl: &TwoLevel, engine: Engine, v: Vec<u64>) -> Result<Vec<u64>, SortError> {
    let input = tl.far_from_vec(v);
    match engine {
        Engine::NmSort | Engine::NmSortDma => {
            let cfg = NmSortConfig {
                sim_lanes: 4,
                threads: 1,
                use_dma: engine == Engine::NmSortDma,
                ..Default::default()
            };
            nmsort(tl, input, &cfg).map(|r| r.output.as_slice_uncharged().to_vec())
        }
        Engine::Baseline => {
            let cfg = BaselineConfig {
                sim_lanes: 4,
                threads: 1,
                ..Default::default()
            };
            baseline_sort(tl, input, &cfg).map(|r| r.output.as_slice_uncharged().to_vec())
        }
        Engine::Spms | Engine::SquareSort => {
            let cfg = ObliviousConfig {
                lanes: 4,
                threads: 1,
                ..Default::default()
            };
            let run = if engine == Engine::Spms {
                spms_sort(tl, input, &cfg)
            } else {
                squaresort_sort(tl, input, &cfg)
            };
            run.map(|(out, _)| out.as_slice_uncharged().to_vec())
        }
    }
}

#[test]
fn every_engine_matches_slice_sort_on_every_shape_with_and_without_faults() {
    // ONE scratchpad for the whole matrix: leak isolation is part of the
    // property. M small enough that every engine stages multi-chunk.
    let tl = TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap());
    for (si, &shape) in SHAPES.iter().enumerate() {
        let data = generate(shape, N, 0xD1FF ^ si as u64);
        let mut expect = data.clone();
        expect.sort_unstable();
        for &engine in Engine::ALL.iter() {
            for fault_seed in [None, Some(1000 + si as u64)] {
                let ctx = format!("{:?} × {} × faults={fault_seed:?}", shape, engine.name());
                if let Some(fs) = fault_seed {
                    tl.install_fault_plan(FaultPlan::seeded(fs));
                }
                match run_engine(&tl, engine, data.clone()) {
                    Ok(out) => assert_eq!(out, expect, "{ctx}"),
                    Err(e) => {
                        // A seeded plan may legitimately exhaust a ladder;
                        // the failure must be typed and must not poison
                        // the scratchpad (checked below).
                        assert!(fault_seed.is_some(), "{ctx}: clean run failed: {e}");
                        assert!(!e.is_canceled(), "{ctx}: spurious cancellation: {e}");
                    }
                }
                tl.clear_faults();
                // Arena discipline: zero leaked near bytes after EVERY
                // case — the next case reuses this same scratchpad.
                assert_eq!(
                    tl.near_used_bytes(),
                    0,
                    "{ctx}: leaked near bytes poison the next case"
                );
                drop(tl.take_trace());
            }
        }
    }
}
