//! Overlap-invariant suite for the double-buffered DMA pipeline.
//!
//! Three locked-down properties:
//!
//! 1. **Byte conservation** — with the SAME explicit chunk geometry, a
//!    DMA-pipelined NMsort charges exactly the bytes the blocking run
//!    charges, on every workload shape. Overlap hides time, never
//!    traffic. (The committed goldens in `tests/golden/` additionally
//!    pin the blocking totals across refactors.)
//! 2. **Makespan ordering** — replaying the pipelined trace can never
//!    be slower than the same trace with its overlappable flags
//!    stripped, and on a compute-heavy configuration it is *strictly*
//!    faster; the engine's reported `overlap_saved_seconds` must equal
//!    the serialized-minus-overlapped difference it claims.
//! 3. **Read-before-retire** — a pending gather's destination can never
//!    be observed before the transfer retires: the arena guard panics,
//!    as an always-on invariant rather than a debug assert.

use two_level_mem::prelude::*;
use two_level_mem::scratchpad::{Dir, PhaseTrace, StagingArena};

use tlmm_testkit::SHAPES;

fn params() -> ScratchpadParams {
    ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap()
}

/// Run NMsort and return (output, ledger snapshot, trace).
fn run_nmsort(
    shape: Workload,
    n: usize,
    use_dma: bool,
    chunk_elems: Option<usize>,
) -> (Vec<u64>, CostSnapshot, PhaseTrace) {
    let tl = TwoLevel::new(params());
    let input = tl.far_from_vec(generate(shape, n, 0xBEEF));
    let r = nmsort(
        &tl,
        input,
        &NmSortConfig {
            sim_lanes: 8,
            threads: 1,
            use_dma,
            chunk_elems,
            seed: 7,
            ..Default::default()
        },
    )
    .unwrap();
    (
        r.output.as_slice_uncharged().to_vec(),
        tl.ledger().snapshot(),
        tl.take_trace(),
    )
}

/// The same trace with every overlappable flag stripped: what the run
/// would look like if the pipeline never double-buffered.
fn serialized(trace: &PhaseTrace) -> PhaseTrace {
    let mut t = trace.clone();
    for p in &mut t.phases {
        p.overlappable = false;
    }
    t
}

#[test]
fn dma_charges_exactly_the_blocking_bytes_on_every_shape() {
    // Pin the chunk geometry so both runs stage identical volumes — the
    // default geometries differ (2 vs 3 buffers), which would change
    // chunk counts, not overlap semantics.
    let chunk = Some(12_000);
    for &shape in SHAPES.iter() {
        let (out_b, snap_b, _) = run_nmsort(shape, 90_000, false, chunk);
        let (out_d, snap_d, _) = run_nmsort(shape, 90_000, true, chunk);
        assert_eq!(out_b, out_d, "{shape:?}: outputs diverge");
        assert_eq!(
            snap_b, snap_d,
            "{shape:?}: the pipelined run must charge byte-identical traffic"
        );
    }
}

#[test]
fn overlapped_makespan_never_exceeds_serialized_and_reports_consistent_savings() {
    let (_, _, trace) = run_nmsort(Workload::UniformU64, 250_000, true, None);
    let machine = MachineConfig::fig4(32, 2.0);
    let overlapped = simulate_flow(&trace, &machine);
    let serial = simulate_flow(&serialized(&trace), &machine);

    assert!(overlapped.overlapped_pairs > 0, "pipeline exposed no pairs");
    assert!(
        overlapped.seconds <= serial.seconds + 1e-9,
        "overlap slowed the run: {} > {}",
        overlapped.seconds,
        serial.seconds
    );
    // The engine's own accounting must match the differential measurement.
    let saved = serial.seconds - overlapped.seconds;
    assert!(
        (overlapped.overlap_saved_seconds - saved).abs() <= 1e-9 * serial.seconds.max(1.0),
        "claimed savings {} disagree with measured {}",
        overlapped.overlap_saved_seconds,
        saved
    );
    assert_eq!(serial.overlapped_pairs, 0);
    assert_eq!(serial.overlap_saved_seconds, 0.0);
    // Traffic is identical either way: overlap hides time, not bytes.
    assert_eq!(overlapped.far_bytes, serial.far_bytes);
    assert_eq!(overlapped.near_bytes, serial.near_bytes);
    assert_eq!(overlapped.far_accesses, serial.far_accesses);
}

#[test]
fn overlap_is_strict_on_a_compute_heavy_configuration() {
    // Few slow cores against the full Fig. 4 memory system: chunk sorts
    // dominate, so every hidden ingest is pure profit and the pipelined
    // makespan must be STRICTLY below the serialized one.
    let (_, _, trace) = run_nmsort(Workload::UniformU64, 250_000, true, None);
    let machine = MachineConfig::fig4(2, 2.0);
    let overlapped = simulate_flow(&trace, &machine);
    let serial = simulate_flow(&serialized(&trace), &machine);
    assert!(
        overlapped.seconds < serial.seconds,
        "compute-heavy overlap must win outright: {} vs {}",
        overlapped.seconds,
        serial.seconds
    );
    assert!(overlapped.overlap_fraction() > 0.0);
    assert!(overlapped.overlap_fraction() < 1.0);
}

#[test]
fn overlap_on_the_discrete_event_engine_agrees_on_direction() {
    let (_, _, trace) = run_nmsort(Workload::UniformU64, 150_000, true, None);
    let machine = MachineConfig::fig4(32, 2.0);
    let overlapped = simulate_des(&trace, &machine, &DesOptions::default());
    let serial = simulate_des(&serialized(&trace), &machine, &DesOptions::default());
    assert!(overlapped.overlapped_pairs > 0);
    assert!(overlapped.seconds <= serial.seconds + 1e-9);
    assert_eq!(overlapped.far_bytes, serial.far_bytes);
}

#[test]
#[ignore = "nightly soak: large-n byte-conservation + makespan sweep over every shape"]
fn overlap_soak_every_shape_conserves_bytes_and_never_slows_down_at_scale() {
    // The nightly leg of the overlap invariants: the same two properties
    // the fast tests pin, but at sizes where the pipeline cycles its
    // three buffers hundreds of times per run, over every shape, at two
    // chunk geometries each.
    for &shape in SHAPES.iter() {
        for &n in &[500_000usize, 1_000_000] {
            // Both geometries must fit the 1 MiB near span: blocking
            // needs 2 chunk buffers + merge headroom, the pipeline 3.
            for chunk in [10_000, 28_000] {
                let (out_b, snap_b, _) = run_nmsort(shape, n, false, Some(chunk));
                let (out_d, snap_d, trace) = run_nmsort(shape, n, true, Some(chunk));
                let ctx = format!("{shape:?} n={n} chunk={chunk}");
                assert_eq!(out_b, out_d, "{ctx}: outputs diverge");
                assert_eq!(snap_b, snap_d, "{ctx}: traffic diverges");
                let machine = MachineConfig::fig4(8, 2.0);
                let overlapped = simulate_flow(&trace, &machine);
                let serial = simulate_flow(&serialized(&trace), &machine);
                assert!(overlapped.overlapped_pairs > 0, "{ctx}: no pairs");
                assert!(
                    overlapped.seconds <= serial.seconds + 1e-9,
                    "{ctx}: overlap slowed the run"
                );
            }
        }
    }
}

#[test]
#[ignore = "nightly soak: faulted pipeline under real-thread retirement orders"]
fn overlap_soak_faulted_pipeline_survives_wild_retirement_orders() {
    // Seeded fault plans against the pipelined engine with a real worker
    // pool: retirement order is whatever the OS scheduler produces, so
    // every assert here is schedule-independent — sorted-or-typed-error,
    // and zero leaked near bytes after EVERY case on one shared
    // scratchpad (the arena-reuse discipline the differential suite pins
    // at small n, here at soak scale and under high fault permille).
    let tl = TwoLevel::new(params());
    for (si, &shape) in SHAPES.iter().enumerate() {
        let data = generate(shape, 500_000, 0x50AC ^ si as u64);
        let mut expect = data.clone();
        expect.sort_unstable();
        for fault_seed in 0..8u64 {
            let ctx = format!("{shape:?} fault_seed={fault_seed}");
            tl.install_fault_plan(FaultPlan::seeded(0xF00D + fault_seed * 131));
            let input = tl.far_from_vec(data.clone());
            let cfg = NmSortConfig {
                sim_lanes: 8,
                threads: 4,
                use_dma: true,
                seed: fault_seed,
                ..Default::default()
            };
            match nmsort(&tl, input, &cfg) {
                Ok(r) => assert_eq!(
                    r.output.as_slice_uncharged().to_vec(),
                    expect,
                    "{ctx}: output diverges"
                ),
                Err(e) => {
                    assert!(!e.is_canceled(), "{ctx}: spurious cancellation: {e}");
                }
            }
            tl.clear_faults();
            assert_eq!(tl.near_used_bytes(), 0, "{ctx}: leaked near bytes");
            drop(tl.take_trace());
        }
    }
}

#[test]
#[should_panic(expected = "read-before-retire")]
fn pending_gather_destination_cannot_be_read_before_retirement() {
    let tl = TwoLevel::new(params());
    let arena = StagingArena::new(&tl);
    let buf = arena.alloc_array::<u64>(128).unwrap();
    let _pending = buf.issue(Dir::Read, 1024).unwrap();
    // The gather is still in flight: observing the destination is the
    // aliasing bug the arena exists to make impossible.
    let _ = buf.as_slice_uncharged();
}
