//! The analytic flow replay and the discrete-event engine must agree on
//! real algorithm traces — the DES models queueing the analytic engine
//! ignores, so agreement within tens of percent is the acceptance band.

use two_level_mem::prelude::*;

fn nmsort_trace(n: usize) -> tlmm_scratchpad::PhaseTrace {
    let params = ScratchpadParams::new(64, 4.0, 2 << 20, 128 << 10).unwrap();
    let tl = TwoLevel::new(params);
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, 17));
    nmsort(
        &tl,
        input,
        &NmSortConfig {
            sim_lanes: 32,
            ..Default::default()
        },
    )
    .unwrap();
    tl.take_trace()
}

#[test]
fn flow_and_des_agree_on_nmsort_trace() {
    let trace = nmsort_trace(200_000);
    let m = MachineConfig::fig4(32, 4.0);
    let flow = simulate_flow(&trace, &m);
    let des = simulate_des(&trace, &m, &DesOptions::default());
    let ratio = des.seconds / flow.seconds;
    assert!(
        ratio > 0.6 && ratio < 2.0,
        "flow {} vs des {} (ratio {ratio})",
        flow.seconds,
        des.seconds
    );
    // Access counts are engine-independent (they come from the trace).
    assert_eq!(flow.far_accesses, des.far_accesses);
    assert_eq!(flow.near_accesses, des.near_accesses);
}

#[test]
fn both_engines_show_the_rho_benefit() {
    let trace = nmsort_trace(200_000);
    for engine in ["flow", "des"] {
        let run = |rho: f64| {
            let m = MachineConfig::fig4(32, rho);
            match engine {
                "flow" => simulate_flow(&trace, &m).seconds,
                _ => simulate_des(&trace, &m, &DesOptions::default()).seconds,
            }
        };
        let t2 = run(2.0);
        let t8 = run(8.0);
        assert!(t8 < t2, "{engine}: 8x ({t8}) must be faster than 2x ({t2})");
    }
}

#[test]
fn des_request_granularity_insensitivity() {
    let trace = nmsort_trace(150_000);
    let m = MachineConfig::fig4(32, 4.0);
    let fine = simulate_des(
        &trace,
        &m,
        &DesOptions {
            req_bytes: 64,
            mlp: 4,
        },
    )
    .seconds;
    let coarse = simulate_des(
        &trace,
        &m,
        &DesOptions {
            req_bytes: 512,
            mlp: 4,
        },
    )
    .seconds;
    let ratio = fine / coarse;
    assert!(ratio > 0.5 && ratio < 2.0, "fine {fine} coarse {coarse}");
}
