//! The analytic flow replay and the discrete-event engine must agree on
//! real algorithm traces — the DES models queueing the analytic engine
//! ignores, so agreement within tens of percent is the acceptance band.

use two_level_mem::prelude::*;

fn nmsort_trace(n: usize) -> tlmm_scratchpad::PhaseTrace {
    let params = ScratchpadParams::new(64, 4.0, 2 << 20, 128 << 10).unwrap();
    let tl = TwoLevel::new(params);
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, 17));
    nmsort(
        &tl,
        input,
        &NmSortConfig {
            sim_lanes: 32,
            ..Default::default()
        },
    )
    .unwrap();
    tl.take_trace()
}

fn nmsort_trace_with_exec(
    n: usize,
    exec: Option<tlmm_scratchpad::ExecConfig>,
) -> tlmm_scratchpad::PhaseTrace {
    let params = ScratchpadParams::new(64, 4.0, 2 << 20, 128 << 10).unwrap();
    let tl = TwoLevel::new(params);
    if let Some(cfg) = exec {
        tl.install_executor(cfg).unwrap();
    }
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, 17));
    nmsort(
        &tl,
        input,
        &NmSortConfig {
            sim_lanes: 32,
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    tl.take_trace()
}

#[test]
fn executor_and_charged_lanes_produce_the_same_flow_trace() {
    // The executor arbitrates and permutes real execution, but lane
    // attribution is positional: the flow simulator must see the identical
    // parallel transfer trace either way. With p' = p = 32 every worker
    // owns a private slot, so no waits are added and even the simulated
    // seconds agree exactly.
    let plain = nmsort_trace_with_exec(120_000, None);
    let exec = nmsort_trace_with_exec(
        120_000,
        Some(tlmm_scratchpad::ExecConfig::deterministic(32, 32, 99)),
    );
    assert_eq!(plain.phases.len(), exec.phases.len());
    for (p, q) in plain.phases.iter().zip(&exec.phases) {
        assert_eq!(p.name, q.name);
        assert_eq!(p.lanes.len(), q.lanes.len(), "phase {}", p.name);
        for (i, (a, b)) in p.lanes.iter().zip(&q.lanes).enumerate() {
            // Byte-for-byte identical lane volumes; the executor only adds
            // (here: zero) slot waits.
            assert_eq!(a.far_read_bytes, b.far_read_bytes, "{} lane {i}", p.name);
            assert_eq!(a.far_write_bytes, b.far_write_bytes, "{} lane {i}", p.name);
            assert_eq!(a.near_read_bytes, b.near_read_bytes, "{} lane {i}", p.name);
            assert_eq!(
                a.near_write_bytes, b.near_write_bytes,
                "{} lane {i}",
                p.name
            );
            assert_eq!(a.compute_ops, b.compute_ops, "{} lane {i}", p.name);
            assert_eq!(
                b.slot_wait_units, 0,
                "p'=p must not wait: {} lane {i}",
                p.name
            );
        }
    }
    let m = MachineConfig::fig4(32, 4.0);
    let a = simulate_flow(&plain, &m);
    let b = simulate_flow(&exec, &m);
    assert_eq!(
        a.seconds, b.seconds,
        "flow must replay both traces identically"
    );
    assert_eq!(a.far_accesses, b.far_accesses);
    assert_eq!(a.near_accesses, b.near_accesses);
}

#[test]
fn slot_starved_executor_trace_slows_the_flow_replay() {
    // p' = 1 under 32 demand lanes: waits land in the trace and the flow
    // simulator charges them on the issue path — simulated time grows.
    let plain = nmsort_trace_with_exec(120_000, None);
    let starved = nmsort_trace_with_exec(
        120_000,
        Some(tlmm_scratchpad::ExecConfig::deterministic(32, 1, 99)),
    );
    assert!(starved.total().slot_wait_units > 0);
    let m = MachineConfig::fig4(32, 4.0);
    let t_plain = simulate_flow(&plain, &m).seconds;
    let t_starved = simulate_flow(&starved, &m).seconds;
    assert!(
        t_starved > t_plain,
        "contention must cost simulated time: {t_starved} vs {t_plain}"
    );
}

#[test]
fn flow_and_des_agree_on_nmsort_trace() {
    let trace = nmsort_trace(200_000);
    let m = MachineConfig::fig4(32, 4.0);
    let flow = simulate_flow(&trace, &m);
    let des = simulate_des(&trace, &m, &DesOptions::default());
    let ratio = des.seconds / flow.seconds;
    assert!(
        ratio > 0.6 && ratio < 2.0,
        "flow {} vs des {} (ratio {ratio})",
        flow.seconds,
        des.seconds
    );
    // Access counts are engine-independent (they come from the trace).
    assert_eq!(flow.far_accesses, des.far_accesses);
    assert_eq!(flow.near_accesses, des.near_accesses);
}

#[test]
fn both_engines_show_the_rho_benefit() {
    let trace = nmsort_trace(200_000);
    for engine in ["flow", "des"] {
        let run = |rho: f64| {
            let m = MachineConfig::fig4(32, rho);
            match engine {
                "flow" => simulate_flow(&trace, &m).seconds,
                _ => simulate_des(&trace, &m, &DesOptions::default()).seconds,
            }
        };
        let t2 = run(2.0);
        let t8 = run(8.0);
        assert!(t8 < t2, "{engine}: 8x ({t8}) must be faster than 2x ({t2})");
    }
}

#[test]
fn des_request_granularity_insensitivity() {
    let trace = nmsort_trace(150_000);
    let m = MachineConfig::fig4(32, 4.0);
    let fine = simulate_des(
        &trace,
        &m,
        &DesOptions {
            req_bytes: 64,
            mlp: 4,
        },
    )
    .seconds;
    let coarse = simulate_des(
        &trace,
        &m,
        &DesOptions {
            req_bytes: 512,
            mlp: 4,
        },
    )
    .seconds;
    let ratio = fine / coarse;
    assert!(ratio > 0.5 && ratio < 2.0, "fine {fine} coarse {coarse}");
}
