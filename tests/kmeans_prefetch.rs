//! Cross-crate test of the §VII k-means prefetching claim: on data larger
//! than the scratchpad, the tiled variant's overlapped loads beat the plain
//! partial-residency variant in simulated time, and all three variants
//! agree numerically.

use two_level_mem::kmeans::generate_blobs;
use two_level_mem::prelude::*;

fn params() -> ScratchpadParams {
    // 1 MiB scratchpad; the data below is ~2.4 MB.
    ScratchpadParams::new(64, 4.0, 1 << 20, 64 << 10).unwrap()
}

fn cfg() -> KMeansConfig {
    KMeansConfig {
        k: 4,
        dim: 6,
        max_iters: 10,
        tol: 0.0,
        sim_lanes: 64,
        ..Default::default()
    }
}

#[test]
fn variants_agree_and_prefetch_beats_blocking_tiles() {
    let pts = generate_blobs(50_000, 6, 4, 30.0, 1);
    let machine = MachineConfig::fig4(64, 4.0);

    let tl = TwoLevel::new(params());
    let arr = tl.far_from_vec(pts.clone());
    let far_res = kmeans_far(&tl, &arr, &cfg());

    let tl = TwoLevel::new(params());
    let arr = tl.far_from_vec(pts.clone());
    let near_res = kmeans_near(&tl, &arr, &cfg()).unwrap();

    let mut blocking = cfg();
    blocking.prefetch = false;
    let tl = TwoLevel::new(params());
    let arr = tl.far_from_vec(pts.clone());
    let block_res = kmeans_tiled(&tl, &arr, &blocking).unwrap();
    let t_blocking = simulate_flow(&tl.take_trace(), &machine).seconds;

    let tl = TwoLevel::new(params());
    let arr = tl.far_from_vec(pts);
    let tiled_res = kmeans_tiled(&tl, &arr, &cfg()).unwrap();
    let t_prefetch = simulate_flow(&tl.take_trace(), &machine).seconds;

    assert_eq!(far_res.assignments, near_res.assignments);
    assert_eq!(far_res.assignments, tiled_res.assignments);
    assert_eq!(far_res.assignments, block_res.assignments);

    // DMA prefetching hides tile loads behind the previous tile's compute —
    // the §VII improvement over the paper's blocking prototype.
    assert!(
        t_prefetch < t_blocking,
        "prefetch {t_prefetch} must beat blocking {t_blocking}"
    );
}

#[test]
fn prefetch_gain_visible_in_des_too() {
    let pts = generate_blobs(50_000, 6, 4, 30.0, 2);
    let machine = MachineConfig::fig4(64, 4.0);
    let opts = DesOptions {
        req_bytes: 256,
        mlp: 4,
    };

    let mut blocking = cfg();
    blocking.prefetch = false;
    let tl = TwoLevel::new(params());
    let arr = tl.far_from_vec(pts.clone());
    kmeans_tiled(&tl, &arr, &blocking).unwrap();
    let t_blocking = simulate_des(&tl.take_trace(), &machine, &opts).seconds;

    let tl = TwoLevel::new(params());
    let arr = tl.far_from_vec(pts);
    kmeans_tiled(&tl, &arr, &cfg()).unwrap();
    let t_prefetch = simulate_des(&tl.take_trace(), &machine, &opts).seconds;

    assert!(
        t_prefetch < t_blocking,
        "DES: prefetch {t_prefetch} must beat blocking {t_blocking}"
    );
}
