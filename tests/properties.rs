//! Property-based tests across the workspace: for arbitrary inputs and
//! geometries, every sort is a sorted permutation of its input and the
//! accounting invariants hold.

use proptest::prelude::*;
use two_level_mem::prelude::*;

fn tiny_params() -> ScratchpadParams {
    // Small M so even modest inputs are multi-chunk: M = 256 KiB, Z = 32 KiB.
    ScratchpadParams::new(64, 3.0, 256 << 10, 32 << 10).unwrap()
}

fn sorted_copy(v: &[u64]) -> Vec<u64> {
    let mut s = v.to_vec();
    s.sort_unstable();
    s
}

use tlmm_testkit::shaped_workload;

/// `Option<u64>` fault seed: half the cases run clean, half under the
/// standard seeded mixed fault profile.
fn opt_fault_seed() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(fire, seed)| fire.then_some(seed))
}

/// One clean oblivious run; returns the sorted output and the far bytes it
/// was charged.
fn run_oblivious<T: two_level_mem::core::SortElem>(
    spms: bool,
    keys: Vec<T>,
    lanes: usize,
    fault_seed: Option<u64>,
) -> (Vec<T>, u64) {
    let tl = TwoLevel::new(tiny_params());
    if let Some(fs) = fault_seed {
        tl.install_fault_plan(FaultPlan::seeded(fs));
    }
    let input = tl.far_from_vec(keys);
    let cfg = ObliviousConfig {
        lanes,
        threads: 1,
        ..Default::default()
    };
    let (out, _report) = if spms {
        spms_sort(&tl, input, &cfg).unwrap()
    } else {
        squaresort_sort(&tl, input, &cfg).unwrap()
    };
    (
        out.as_slice_uncharged().to_vec(),
        tl.ledger().snapshot().far_bytes,
    )
}

/// Differential check for one oblivious engine: sorted-permutation vs
/// `slice::sort` on the chosen key type, and — when a fault plan is in
/// play — a degraded run that still sorts and never pays *less* far
/// traffic than the clean one.
fn oblivious_differential(
    spms: bool,
    w: Workload,
    n: usize,
    seed: u64,
    lanes: usize,
    key_kind: u8,
    fault_seed: Option<u64>,
) {
    fn check<T: two_level_mem::core::SortElem + std::fmt::Debug>(
        spms: bool,
        keys: Vec<T>,
        lanes: usize,
        fault_seed: Option<u64>,
    ) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        let (clean_out, clean_far) = run_oblivious(spms, keys.clone(), lanes, None);
        prop_assert_eq!(&clean_out, &expect);
        if fault_seed.is_some() {
            let (fault_out, fault_far) = run_oblivious(spms, keys, lanes, fault_seed);
            prop_assert_eq!(&fault_out, &expect);
            prop_assert!(
                fault_far >= clean_far,
                "degraded run under-charged: {} < {} far bytes",
                fault_far,
                clean_far
            );
        }
    }
    let base = generate(w, n, seed);
    match key_kind {
        0 => check::<u64>(spms, base, lanes, fault_seed),
        1 => check::<u32>(
            spms,
            base.into_iter().map(|x| (x >> 32) as u32).collect(),
            lanes,
            fault_seed,
        ),
        _ => check::<i64>(
            spms,
            base.into_iter().map(|x| x as i64).collect(),
            lanes,
            fault_seed,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nmsort_sorts_arbitrary_inputs(
        v in proptest::collection::vec(any::<u64>(), 0..60_000),
        lanes in 1usize..16,
        chunk_div in 1usize..6,
    ) {
        let tl = TwoLevel::new(tiny_params());
        let expect = sorted_copy(&v);
        let n = v.len();
        let input = tl.far_from_vec(v);
        let cfg = NmSortConfig {
            sim_lanes: lanes,
            chunk_elems: if n > 16 { Some((n / chunk_div).clamp(8, 14_000)) } else { None },
            threads: 1,
            ..Default::default()
        };
        let r = nmsort(&tl, input, &cfg).unwrap();
        prop_assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
    }

    #[test]
    fn nmsort_handles_duplicate_heavy_inputs(
        n in 0usize..50_000,
        distinct in 1u64..8,
        seed in any::<u64>(),
    ) {
        let v = generate(Workload::FewDistinct(distinct), n, seed);
        let tl = TwoLevel::new(tiny_params());
        let expect = sorted_copy(&v);
        let input = tl.far_from_vec(v);
        let r = nmsort(&tl, input, &NmSortConfig {
            threads: 1,
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
    }

    #[test]
    fn baseline_sorts_arbitrary_inputs(
        v in proptest::collection::vec(any::<u64>(), 0..40_000),
        lanes in 1usize..32,
    ) {
        let tl = TwoLevel::new(tiny_params());
        let expect = sorted_copy(&v);
        let input = tl.far_from_vec(v);
        let r = baseline_sort(&tl, input, &BaselineConfig {
            sim_lanes: lanes,
            threads: 1,
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
    }

    #[test]
    fn seqsort_sorts_arbitrary_inputs(
        v in proptest::collection::vec(any::<u64>(), 0..40_000),
    ) {
        let tl = TwoLevel::new(tiny_params());
        let expect = sorted_copy(&v);
        let input = tl.far_from_vec(v);
        let (out, _) = seq_scratchpad_sort(&tl, input, &SeqSortConfig::default()).unwrap();
        prop_assert_eq!(out.as_slice_uncharged(), expect.as_slice());
    }

    #[test]
    fn ledger_bytes_and_blocks_are_consistent(
        v in proptest::collection::vec(any::<u64>(), 100..30_000),
    ) {
        let tl = TwoLevel::new(tiny_params());
        let input = tl.far_from_vec(v);
        nmsort(&tl, input, &NmSortConfig { threads: 1, ..Default::default() }).unwrap();
        let s = tl.ledger().snapshot();
        let p = tiny_params();
        // Block counts can exceed bytes/block (ceiling per transfer) but
        // never be smaller, and never exceed one block per byte.
        prop_assert!(s.far_blocks() >= s.far_bytes / p.block_bytes);
        prop_assert!(s.near_blocks() >= s.near_bytes / p.near_block_bytes());
        prop_assert!(s.far_blocks() <= s.far_bytes.max(1));
        // Trace volumes match ledger byte volumes for sequential IO; random
        // accesses inflate the trace (full blocks), never deflate it.
        let t = tl.take_trace().total();
        prop_assert!(t.far_bytes() >= s.far_bytes);
        prop_assert!(t.near_bytes() >= s.near_bytes);
    }

    #[test]
    fn simulated_time_monotone_in_rho(
        v in proptest::collection::vec(any::<u64>(), 2_000..25_000),
    ) {
        let tl = TwoLevel::new(tiny_params());
        let input = tl.far_from_vec(v);
        nmsort(&tl, input, &NmSortConfig { threads: 1, ..Default::default() }).unwrap();
        let trace = tl.take_trace();
        let mut prev = f64::INFINITY;
        for rho in [1.0, 2.0, 4.0, 8.0] {
            let s = simulate_flow(&trace, &MachineConfig::fig4(16, rho)).seconds;
            prop_assert!(s <= prev * 1.0001, "rho {} time {} prev {}", rho, s, prev);
            prev = s;
        }
    }

    // ---- Differential suite: every sort vs `slice::sort` across workload
    // shapes, with and without a fault plan installed. A seeded plan must
    // never change the *output* — only the cost of producing it.

    #[test]
    fn nmsort_differential_across_shapes_and_faults(
        w in shaped_workload(),
        n in 0usize..40_000,
        seed in any::<u64>(),
        lanes in 1usize..8,
        fault_seed in opt_fault_seed(),
    ) {
        let v = generate(w, n, seed);
        let expect = sorted_copy(&v);
        let tl = TwoLevel::new(tiny_params());
        if let Some(fs) = fault_seed {
            tl.install_fault_plan(FaultPlan::seeded(fs));
        }
        let input = tl.far_from_vec(v);
        let cfg = NmSortConfig {
            sim_lanes: lanes,
            chunk_elems: if n > 64 { Some((n / 3).clamp(32, 14_000)) } else { None },
            threads: 1,
            ..Default::default()
        };
        let r = nmsort(&tl, input, &cfg).unwrap();
        prop_assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
        // Injected faults must never pass silently: every one is either a
        // recorded degradation or a trace fault event.
        if tl.faults_injected() > 0 {
            let trace_faults = tl.take_trace().faults();
            prop_assert!(
                r.degradations.any() || trace_faults > 0,
                "{} faults fired with no degradation record", tl.faults_injected()
            );
        }
    }

    #[test]
    fn quicksort_chunk_sorter_differential(
        w in shaped_workload(),
        n in 0usize..30_000,
        seed in any::<u64>(),
        fault_seed in opt_fault_seed(),
    ) {
        let v = generate(w, n, seed);
        let expect = sorted_copy(&v);
        let tl = TwoLevel::new(tiny_params());
        if let Some(fs) = fault_seed {
            tl.install_fault_plan(FaultPlan::seeded(fs));
        }
        let input = tl.far_from_vec(v);
        let cfg = NmSortConfig {
            chunk_sorter: ChunkSorter::Quicksort,
            threads: 1,
            ..Default::default()
        };
        let r = nmsort(&tl, input, &cfg).unwrap();
        prop_assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
    }

    #[test]
    fn extsort_differential_across_shapes_and_faults(
        w in shaped_workload(),
        n in 1usize..20_000,
        seed in any::<u64>(),
        fault_seed in opt_fault_seed(),
    ) {
        use two_level_mem::core::extsort::{external_sort, ExtSortConfig, RegionLevel};
        let v = generate(w, n, seed);
        let expect = sorted_copy(&v);
        let tl = TwoLevel::new(tiny_params());
        if let Some(fs) = fault_seed {
            tl.install_fault_plan(FaultPlan::seeded(fs));
        }
        let mut data = tl.far_from_vec(v);
        let mut scratch = tl.far_from_vec(vec![0u64; n]);
        let outcome = external_sort(
            &tl,
            RegionLevel::Far,
            data.as_mut_slice_uncharged(),
            scratch.as_mut_slice_uncharged(),
            &ExtSortConfig::default(),
        );
        let result = if outcome.in_scratch {
            scratch.as_slice_uncharged()
        } else {
            data.as_slice_uncharged()
        };
        prop_assert_eq!(result, expect.as_slice());
    }

    #[test]
    fn baseline_differential_under_faults(
        w in shaped_workload(),
        n in 0usize..20_000,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let v = generate(w, n, seed);
        let expect = sorted_copy(&v);
        let tl = TwoLevel::new(tiny_params());
        tl.install_fault_plan(FaultPlan::seeded(fault_seed));
        let input = tl.far_from_vec(v);
        let r = baseline_sort(&tl, input, &BaselineConfig {
            threads: 1,
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(r.output.as_slice_uncharged(), expect.as_slice());
    }

    // ---- Oblivious engines: differential vs `slice::sort` across the same
    // workload shapes, over three key types, with and without faults. Honest
    // accounting means a faulted run can re-stream but never under-charge.

    #[test]
    fn spms_differential_across_shapes_keys_and_faults(
        w in shaped_workload(),
        n in 0usize..30_000,
        seed in any::<u64>(),
        lanes in 1usize..8,
        key_kind in 0u8..3,
        fault_seed in opt_fault_seed(),
    ) {
        oblivious_differential(true, w, n, seed, lanes, key_kind, fault_seed);
    }

    #[test]
    fn squaresort_differential_across_shapes_keys_and_faults(
        w in shaped_workload(),
        n in 0usize..30_000,
        seed in any::<u64>(),
        lanes in 1usize..8,
        key_kind in 0u8..3,
        fault_seed in opt_fault_seed(),
    ) {
        oblivious_differential(false, w, n, seed, lanes, key_kind, fault_seed);
    }

    #[test]
    fn kmeans_assignments_valid_and_variants_agree(
        n in 50usize..2_000,
        k in 1usize..6,
        d in 1usize..4,
        seed in any::<u64>(),
    ) {
        let pts = two_level_mem::kmeans::generate_blobs(n, d, k, 5.0, seed);
        let tl = TwoLevel::new(tiny_params());
        let arr = tl.far_from_vec(pts);
        let cfg = KMeansConfig { k, dim: d, max_iters: 8, sim_lanes: 4, parallel: false, ..Default::default() };
        let a = kmeans_far(&tl, &arr, &cfg);
        let b = kmeans_near(&tl, &arr, &cfg).unwrap();
        prop_assert_eq!(&a.assignments, &b.assignments);
        prop_assert!(a.assignments.iter().all(|&c| (c as usize) < k));
        prop_assert!(a.inertia.is_finite());
    }
}
