//! Golden charge-ledger snapshots: nondeterminism regressions fail loudly.
//!
//! For each of the six sorters, a canonical small-N run's `CostSnapshot`
//! is committed under `tests/golden/`. Every test run re-executes the
//! sorter and asserts byte-identical serialization against the golden —
//! first with no executor (the sequential oracle), then under the
//! deterministic executor across `p ∈ {1, 2, 8}` workers and two scheduler
//! seeds. Arbitration may reorder and delay transfers but must never
//! change a single charged byte.
//!
//! Regenerate after an *intentional* accounting change with:
//! `TLMM_BLESS=1 cargo test --test golden_ledgers`

use two_level_mem::prelude::*;

const GOLDEN_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
const N: usize = 30_000;
const DATA_SEED: u64 = 0xC0FFEE;

fn tl() -> TwoLevel {
    TwoLevel::new(ScratchpadParams::new(64, 4.0, 1 << 20, 16 << 10).unwrap())
}

fn input() -> Vec<u64> {
    generate(Workload::UniformU64, N, DATA_SEED)
}

/// Run one canonical sorter configuration, optionally under an executor.
fn run_sorter(name: &str, exec: Option<tlmm_scratchpad::ExecConfig>) -> CostSnapshot {
    let tl = tl();
    if let Some(cfg) = exec {
        tl.install_executor(cfg).unwrap();
    }
    let far = tl.far_from_vec(input());
    match name {
        "nmsort" => {
            let r = two_level_mem::core::nmsort::nmsort(
                &tl,
                far,
                &NmSortConfig {
                    sim_lanes: 8,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_sorted(r.output.as_slice_uncharged());
        }
        "nmsort_dma" => {
            // The DMA-pipelined NMsort golden is NEW with the staging
            // arena (there was no overlapped engine to pin before it):
            // its 3-buffer geometry stages smaller chunks, so its totals
            // legitimately differ from "nmsort" — while the blocking
            // goldens above stay byte-identical across the arena
            // refactor, which is the invariant that pins the arena's
            // exact-fit accounting.
            let r = two_level_mem::core::nmsort::nmsort(
                &tl,
                far,
                &NmSortConfig {
                    sim_lanes: 8,
                    threads: 1,
                    use_dma: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_sorted(r.output.as_slice_uncharged());
        }
        "seqsort" => {
            let (out, _) = seq_scratchpad_sort(
                &tl,
                far,
                &SeqSortConfig {
                    lanes: 4,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_sorted(out.as_slice_uncharged());
        }
        "parsort" => {
            let (out, _) = par_scratchpad_sort(
                &tl,
                far,
                &ParSortConfig {
                    lanes: 8,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_sorted(out.as_slice_uncharged());
        }
        "baseline" => {
            let r = baseline_sort(
                &tl,
                far,
                &BaselineConfig {
                    sim_lanes: 4,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_sorted(r.output.as_slice_uncharged());
        }
        "spms" | "squaresort" => {
            let cfg = ObliviousConfig {
                lanes: 8,
                threads: 1,
                ..Default::default()
            };
            let (out, _report) = if name == "spms" {
                spms_sort(&tl, far, &cfg).unwrap()
            } else {
                squaresort_sort(&tl, far, &cfg).unwrap()
            };
            assert_sorted(out.as_slice_uncharged());
        }
        other => panic!("unknown sorter {other}"),
    }
    tl.ledger().snapshot()
}

fn assert_sorted(v: &[u64]) {
    assert!(v.windows(2).all(|w| w[0] <= w[1]), "output must be sorted");
    assert_eq!(v.len(), N);
}

/// Assert `snap` serializes byte-identically to the committed golden
/// (or bless it when `TLMM_BLESS` is set), including the typed
/// round-trip — see `tlmm_testkit::check_golden`.
fn check_against_golden(name: &str, snap: &CostSnapshot, context: &str) {
    tlmm_testkit::check_golden(&tlmm_testkit::golden_path(GOLDEN_DIR, name), snap, context);
}

const SORTERS: [&str; 7] = [
    "nmsort",
    "nmsort_dma",
    "seqsort",
    "parsort",
    "baseline",
    "spms",
    "squaresort",
];

#[test]
fn all_sorters_match_their_golden_ledgers() {
    for name in SORTERS {
        let snap = run_sorter(name, None);
        check_against_golden(name, &snap, "no executor");
    }
}

#[test]
fn golden_ledgers_replay_across_workers_and_seeds() {
    for name in SORTERS {
        for p in [1usize, 2, 8] {
            for seed in [1u64, 42] {
                let slots = p.min(2);
                let exec = tlmm_scratchpad::ExecConfig::deterministic(p, slots, seed);
                let snap = run_sorter(name, Some(exec));
                check_against_golden(name, &snap, &format!("p={p} p'={slots} seed={seed}"));
            }
        }
    }
}

#[test]
fn golden_ledgers_replay_under_fully_serialized_arbiter() {
    // p' = 1: every transfer in the whole sort funnels through a single
    // slot — the sequential-engine equivalence of the acceptance criteria.
    for name in SORTERS {
        let exec = tlmm_scratchpad::ExecConfig::deterministic(8, 1, 7);
        let snap = run_sorter(name, Some(exec));
        check_against_golden(name, &snap, "p=8 p'=1");
    }
}
