//! DMA overlap (§VII future work): marking Phase-1 transfers overlappable
//! must never slow the simulated run down, and must speed it up when
//! transfers and compute are comparable.

use two_level_mem::prelude::*;
use two_level_mem::scratchpad::dma::DmaEngine;

fn run(n: usize, use_dma: bool) -> f64 {
    let params = ScratchpadParams::new(64, 2.0, 2 << 20, 128 << 10).unwrap();
    let tl = TwoLevel::new(params);
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, 23));
    nmsort(
        &tl,
        input,
        &NmSortConfig {
            sim_lanes: 32,
            use_dma,
            seed: 1,
            ..Default::default()
        },
    )
    .unwrap();
    simulate_flow(&tl.take_trace(), &MachineConfig::fig4(32, 2.0)).seconds
}

#[test]
fn dma_never_hurts_and_usually_helps() {
    let plain = run(250_000, false);
    let dma = run(250_000, true);
    assert!(
        dma <= plain * 1.001,
        "DMA-overlapped {dma} must not exceed blocking {plain}"
    );
    assert!(
        dma < plain * 0.98,
        "expected a visible overlap gain: {dma} vs {plain}"
    );
}

#[test]
fn dma_engine_moves_data_concurrently_with_compute() {
    let params = ScratchpadParams::new(64, 4.0, 1 << 20, 64 << 10).unwrap();
    let tl = TwoLevel::new(params);
    let dma = DmaEngine::new(&tl);
    let far = tl.far_from_vec((0u64..50_000).collect::<Vec<_>>());
    let near = tl.near_alloc::<u64>(50_000).unwrap();
    tl.begin_phase("overlap");
    let xfer = dma.far_to_near(far, 0..50_000, near, 0);
    // "Compute" while the copy is in flight.
    let mut acc = 0u64;
    for i in 0..10_000u64 {
        acc = acc.wrapping_add(i * i);
    }
    tl.charge_compute(10_000);
    let (_far, near) = xfer.wait().unwrap();
    tl.end_phase();
    assert!(acc > 0);
    assert_eq!(near.as_slice_uncharged()[49_999], 49_999);
    let trace = tl.take_trace();
    assert!(trace.phases[0].overlappable);
    // The simulator credits the overlap.
    let m = MachineConfig::fig4(4, 4.0);
    let sim = simulate_flow(&trace, &m);
    assert!(sim.seconds > 0.0);
}
