//! Theory-vs-measurement: the ledger's exact counts against the closed-form
//! predictions (the paper's "memory access counts from simulations
//! corroborate predicted performance").

use two_level_mem::analysis::validation::{constants_stable, ValidationRow};
use two_level_mem::core::seqsort::{seq_scratchpad_sort, SeqSortConfig};
use two_level_mem::model::{recursion, theorems};
use two_level_mem::prelude::*;

fn params(rho: f64) -> ScratchpadParams {
    ScratchpadParams::new(64, rho, 2 << 20, 128 << 10).unwrap()
}

fn nmsort_snapshot(n: usize, rho: f64) -> CostSnapshot {
    let tl = TwoLevel::new(params(rho));
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, n as u64));
    let r = nmsort(
        &tl,
        input,
        &NmSortConfig {
            sim_lanes: 16,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(r
        .output
        .as_slice_uncharged()
        .windows(2)
        .all(|w| w[0] <= w[1]));
    tl.ledger().snapshot()
}

#[test]
fn theorem6_constants_stay_bounded_over_n() {
    let p = params(4.0);
    let rows: Vec<ValidationRow> = [200_000usize, 400_000, 800_000, 1_600_000]
        .iter()
        .map(|&n| ValidationRow::new(&p, n as u64, 8, &nmsort_snapshot(n, 4.0)))
        .collect();
    for r in &rows {
        assert!(
            r.far_constant() > 0.2 && r.far_constant() < 20.0,
            "far constant {} out of range at n={}",
            r.far_constant(),
            r.n
        );
        assert!(
            r.near_constant() > 0.2 && r.near_constant() < 20.0,
            "near constant {} out of range at n={}",
            r.near_constant(),
            r.n
        );
    }
    assert!(
        constants_stable(&rows, 4.0),
        "hidden constants drift: {:?}",
        rows.iter()
            .map(|r| (r.far_constant(), r.near_constant()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn near_blocks_scale_inversely_with_rho() {
    // Theorem 6: a near block carries rho*B bytes, so blocks-per-byte must
    // scale as 1/rho. (Byte volumes themselves may differ slightly across
    // rho — the merge fanout legitimately adapts to the rho*B block size.)
    let s2 = nmsort_snapshot(400_000, 2.0);
    let s8 = nmsort_snapshot(400_000, 8.0);
    let bpb2 = s2.near_blocks() as f64 / s2.near_bytes as f64;
    let bpb8 = s8.near_blocks() as f64 / s8.near_bytes as f64;
    let ratio = bpb2 / bpb8;
    assert!(
        (ratio - 4.0).abs() < 0.4,
        "blocks-per-byte ratio {ratio} should be ~4 (= 8/2)"
    );
    // And each is close to its nominal 1/(rho*B), allowing ceiling slack.
    assert!((1.0 / 128.0..1.15 / 128.0).contains(&bpb2), "bpb2 {bpb2}");
    assert!((1.0 / 512.0..1.15 / 512.0).contains(&bpb8), "bpb8 {bpb8}");
}

#[test]
fn seqsort_recursion_depth_obeys_lemma5_scale() {
    let tl = TwoLevel::new(params(4.0));
    let n = 1_000_000usize;
    let input = tl.far_from_vec(generate(Workload::UniformU64, n, 11));
    let (out, report) = seq_scratchpad_sort(&tl, input, &SeqSortConfig::default()).unwrap();
    assert!(out.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
    // M = 2 MiB -> cap ~ 100k elems; m ~ 2048 pivots. log_m(N/cap) = ~0.3,
    // so 1-2 levels should always suffice for uniform input.
    assert!(report.max_depth <= 2, "depth {}", report.max_depth);
    assert_eq!(report.fallback_buckets, 0);
    // Lemma 5's analytic scan count bounds the observed one (with slack).
    let p = params(4.0);
    let predicted = theorems::lemma5_scan_count(&p, n as u64, 8).max(1) as u64;
    assert!(
        report.scans <= 20 * predicted,
        "scans {} vs predicted O({})",
        report.scans,
        predicted
    );
}

#[test]
fn bad_split_probability_is_negligible_at_real_sample_sizes() {
    let p = params(4.0);
    let m = p.sample_size_m();
    assert!(m >= 1000, "paper-scale samples are large (m = {m})");
    assert!(recursion::bad_split_probability_approx(m) < 1e-12);
}

#[test]
fn lower_bound_never_exceeds_measured() {
    // The (constant-free) lower bound should sit below the measured counts.
    let p = params(4.0);
    let n = 400_000u64;
    let s = nmsort_snapshot(n as usize, 4.0);
    let lb = theorems::theorem6_lower_bound(&p, n, 8);
    assert!(
        (s.total_blocks() as f64) > 0.5 * lb,
        "measured {} suspiciously below lower bound {}",
        s.total_blocks(),
        lb
    );
}

#[test]
fn baseline_matches_theorem1_shape() {
    // Baseline far blocks should track Theorem 1's (n/B)·log_{Z/B}(n/B)
    // within a stable constant across n.
    let consts: Vec<f64> = [200_000usize, 400_000, 800_000]
        .iter()
        .map(|&n| {
            let tl = TwoLevel::new(params(2.0));
            let input = tl.far_from_vec(generate(Workload::UniformU64, n, 13));
            baseline_sort(
                &tl,
                input,
                &BaselineConfig {
                    sim_lanes: 16,
                    ..Default::default()
                },
            )
            .unwrap();
            let meas = tl.ledger().snapshot().far_blocks() as f64;
            let pred = theorems::theorem1_multiway_sort(n as u64, 8, 128 << 10, 64);
            meas / pred
        })
        .collect();
    let max = consts.iter().cloned().fold(0.0f64, f64::max);
    let min = consts.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max / min < 4.0, "constants {consts:?} drift");
}
