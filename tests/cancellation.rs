//! Cancellation safety, property-tested: a job cancelled at a *random*
//! phase boundary (via a randomly sized charged-unit budget) must
//!
//! 1. surface as the typed [`SortError::Canceled`] — never a panic;
//! 2. leave the scratchpad arena with **zero** leaked near bytes; and
//! 3. leave the arena fully reusable — the next job on the *same*
//!    scratchpad sorts and matches `slice::sort` exactly.
//!
//! The budget fraction sweeps the whole range, so the trip point lands on
//! every phase boundary an engine has (including "before any work" and
//! "after all work", where the run completes normally).

use proptest::prelude::*;
use tlmm_scratchpad::CancelToken;
use two_level_mem::prelude::*;

fn cancel_params() -> ScratchpadParams {
    ScratchpadParams::new(64, 3.0, 1 << 20, 64 << 10).unwrap()
}

/// Run `engine` over `v`, returning sorted output or the typed error.
fn run_engine(tl: &TwoLevel, engine: Engine, v: Vec<u64>) -> Result<Vec<u64>, SortError> {
    let input = tl.far_from_vec(v);
    match engine {
        Engine::NmSort | Engine::NmSortDma => {
            let cfg = NmSortConfig {
                sim_lanes: 4,
                threads: 1,
                use_dma: engine == Engine::NmSortDma,
                ..Default::default()
            };
            nmsort(tl, input, &cfg).map(|r| r.output.as_slice_uncharged().to_vec())
        }
        Engine::Baseline => {
            let cfg = BaselineConfig {
                sim_lanes: 4,
                threads: 1,
                ..Default::default()
            };
            baseline_sort(tl, input, &cfg).map(|r| r.output.as_slice_uncharged().to_vec())
        }
        Engine::Spms | Engine::SquareSort => {
            let cfg = ObliviousConfig {
                lanes: 4,
                threads: 1,
                ..Default::default()
            };
            let run = if engine == Engine::Spms {
                spms_sort(tl, input, &cfg)
            } else {
                squaresort_sort(tl, input, &cfg)
            };
            run.map(|(out, _)| out.as_slice_uncharged().to_vec())
        }
    }
}

/// Charged units a clean run of `engine` consumes at this geometry — the
/// scale against which the random budget fraction is applied.
fn clean_units(engine: Engine, n: usize, seed: u64) -> u64 {
    let tl = TwoLevel::new(cancel_params());
    run_engine(&tl, engine, generate(Workload::UniformU64, n, seed)).expect("clean run succeeds");
    let s = tl.ledger().snapshot();
    s.far_bytes + s.near_bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cancellation_at_any_phase_boundary_is_leak_free_and_arena_reusable(
        engine_ix in 0usize..Engine::ALL.len(),
        // Sweep from "trips immediately" (0) past "never trips" (>100%).
        budget_pct in 0u64..120,
        n in 20_000usize..80_000,
        seed in 0u64..1_000,
    ) {
        let engine = Engine::ALL[engine_ix];
        let budget = clean_units(engine, n, seed) * budget_pct / 100;
        let tl = TwoLevel::new(cancel_params());
        tl.install_cancel(CancelToken::with_unit_budget(budget));
        let result = run_engine(&tl, engine, generate(Workload::UniformU64, n, seed));
        tl.clear_cancel();

        // (2) Whatever happened, the arena holds zero near bytes.
        prop_assert_eq!(tl.near_used_bytes(), 0, "leaked near bytes after {:?}", result.as_ref().err());

        // (1) The only allowed failure is the typed cancellation.
        let mut expect = generate(Workload::UniformU64, n, seed);
        expect.sort_unstable();
        match result {
            Ok(out) => prop_assert_eq!(out, expect.clone(), "uncancelled run must sort"),
            Err(e) => prop_assert!(e.is_canceled(), "unexpected error under budget: {}", e),
        }

        // (3) The next job on the SAME scratchpad produces output equal to
        // slice::sort.
        let again = run_engine(&tl, engine, generate(Workload::UniformU64, n, seed))
            .expect("follow-up job on the same arena succeeds");
        prop_assert_eq!(again, expect);
        prop_assert_eq!(tl.near_used_bytes(), 0);
    }
}

/// Deterministic anchors for the extremes the proptest may or may not hit
/// in a given run: budget 0 always cancels engines that do work before
/// their first checkpoint charge; an enormous budget never cancels.
#[test]
fn zero_budget_cancels_nmsort_and_huge_budget_does_not() {
    let n = 50_000;
    let tl = TwoLevel::new(cancel_params());
    tl.install_cancel(CancelToken::with_unit_budget(0));
    let err = run_engine(&tl, Engine::NmSort, generate(Workload::UniformU64, n, 1))
        .expect_err("zero budget must cancel at the first phase boundary");
    assert!(err.is_canceled());
    assert_eq!(tl.near_used_bytes(), 0);
    tl.clear_cancel();

    tl.install_cancel(CancelToken::with_unit_budget(u64::MAX / 2));
    let out = run_engine(&tl, Engine::NmSort, generate(Workload::UniformU64, n, 1))
        .expect("huge budget never trips");
    tl.clear_cancel();
    let mut expect = generate(Workload::UniformU64, n, 1);
    expect.sort_unstable();
    assert_eq!(out, expect);
}

/// Explicit cancellation (the flag, not the budget) set *before* the run
/// trips the very first checkpoint of every engine.
#[test]
fn pre_cancelled_token_stops_every_engine_before_work() {
    for &engine in Engine::ALL.iter() {
        let tl = TwoLevel::new(cancel_params());
        let token = CancelToken::new();
        token.cancel();
        tl.install_cancel(token);
        let err = run_engine(&tl, engine, generate(Workload::UniformU64, 30_000, 2))
            .expect_err("cancelled token must stop the run");
        assert!(err.is_canceled(), "{}: {err}", engine.name());
        assert_eq!(tl.near_used_bytes(), 0, "{}", engine.name());
    }
}
