//! Order statistics without sorting: the scratchpad selection primitive.
//!
//! Finds percentiles of a large far-memory array with a couple of counting
//! scans plus one in-scratchpad sort — far cheaper than sorting everything,
//! and a taste of the "algorithmic primitives" beyond NMsort.
//!
//! Run: `cargo run --release --example order_statistics`

use two_level_mem::analysis::table::{count, Table};
use two_level_mem::prelude::*;

fn main() {
    let n = 2_000_000usize;
    let params = ScratchpadParams::new(64, 4.0, 8 << 20, 512 << 10).unwrap();
    let tl = TwoLevel::new(params);
    let data = generate(Workload::Zipf(1.1), n, 77);
    let input = tl.far_from_vec(data);

    let mut t = Table::new(["percentile", "rank", "value", "scan rounds"]);
    for pct in [1u32, 25, 50, 75, 99] {
        let k = ((n as u64 * pct as u64) / 100).min(n as u64 - 1) as usize;
        let before = tl.ledger().snapshot();
        let (value, report) = select_kth(&tl, &input, k, &SelectConfig::default()).unwrap();
        let _delta = tl.ledger().snapshot().since(&before);
        t.row(vec![
            format!("p{pct}"),
            count(k as u64),
            value.to_string(),
            report.rounds.to_string(),
        ]);
    }
    println!("\npercentiles of {n} Zipf-distributed u64 (selection, no full sort)\n");
    println!("{}", t.render());

    // Compare the per-query cost against one full sort.
    let select_blocks = tl.ledger().snapshot().total_blocks() / 5;
    let tl2 = TwoLevel::new(params);
    let input2 = tl2.far_from_vec(generate(Workload::Zipf(1.1), n, 77));
    nmsort(&tl2, input2, &NmSortConfig::default()).unwrap();
    let sort_blocks = tl2.ledger().snapshot().total_blocks();
    println!(
        "one selection costs ~{select_blocks} block transfers vs {sort_blocks} \
         for a full NMsort ({:.1}x cheaper per query) — sort once instead if \
         you need many ranks.",
        sort_blocks as f64 / select_blocks as f64
    );
}
