//! Quickstart: sort on a two-level memory and simulate the result.
//!
//! Run: `cargo run --release --example quickstart`

use two_level_mem::prelude::*;

fn main() {
    // 1. Describe the memory: B = 64 B far blocks, scratchpad bandwidth
    //    expansion rho = 4, scratchpad M = 64 MiB, cache Z = 4 MiB.
    let params = ScratchpadParams::new(64, 4.0, 64 << 20, 4 << 20).unwrap();
    let tl = TwoLevel::new(params);

    // 2. Put an input array in far memory (DRAM).
    let n = 4_000_000;
    let data = generate(Workload::UniformU64, n, 42);
    let input = tl.far_from_vec(data);

    // 3. Sort it with NMsort: chunks are staged through the scratchpad,
    //    bucket metadata is recorded, batches of buckets are merged back.
    let cfg = NmSortConfig {
        sim_lanes: 64, // pretend this node has 64 cores
        ..Default::default()
    };
    let report = nmsort(&tl, input, &cfg).expect("sort failed");
    assert!(report
        .output
        .as_slice_uncharged()
        .windows(2)
        .all(|w| w[0] <= w[1]));
    println!(
        "sorted {n} u64s in {} chunks, {} pivots, {} phase-2 batches",
        report.chunks, report.n_pivots, report.batches
    );

    // 4. The run charged every block transfer to the ledger...
    let s = tl.ledger().snapshot();
    println!(
        "ledger: {} far blocks ({:.1} MB), {} near blocks ({:.1} MB), {} comparisons",
        s.far_blocks(),
        s.far_bytes as f64 / 1e6,
        s.near_blocks(),
        s.near_bytes as f64 / 1e6,
        s.compute_ops,
    );

    // 5. ...and recorded a phase trace we can replay on a machine model.
    let machine = MachineConfig::fig4(64, 4.0);
    let sim = simulate_flow(&tl.take_trace(), &machine);
    println!(
        "simulated on {}: {:.3} ms, {} DRAM accesses, {} scratchpad accesses",
        machine.name,
        sim.seconds * 1e3,
        sim.far_accesses,
        sim.near_accesses
    );
}
