//! When does the scratchpad help? A streaming-analytics study.
//!
//! §I of the paper is explicit about a limitation: "the scratchpad will not
//! accelerate a computation that consists of a single scan of a large chunk
//! of data that resides in DRAM" — the DRAM→cache bandwidth is unchanged.
//! The benefit appears when data is *reused*: stage once, scan many times
//! at ρ× bandwidth.
//!
//! This example runs a histogram kernel `passes` times over the same array,
//! once streaming from DRAM every pass and once staged in the scratchpad,
//! and shows the crossover at passes ≈ 2.
//!
//! Run: `cargo run --release --example streaming_analytics`

use two_level_mem::analysis::table::{ratio, secs, Table};
use two_level_mem::core::par::{charged_copy, CopyKind};
use two_level_mem::prelude::*;
use two_level_mem::scratchpad::{par_scan_far, with_lane, NearReader};

/// Per-lane histogram accumulator (newtype so `Default` gives zeroes).
struct Hist([u64; 64]);
impl Default for Hist {
    fn default() -> Self {
        Hist([0; 64])
    }
}

fn histogram_of(piece: &[u64], hist: &mut [u64; 64]) {
    for &v in piece {
        hist[(v >> 58) as usize] += 1;
    }
}

fn main() {
    let n = 4_000_000usize;
    let lanes = 64usize;
    let params = ScratchpadParams::new(64, 4.0, 64 << 20, 4 << 20).unwrap();
    let machine = MachineConfig::fig4(lanes as u32, 4.0);
    let data = generate(Workload::UniformU64, n, 99);

    let mut t = Table::new(["passes", "DRAM-scan (s)", "staged (s)", "speedup"]);
    for passes in [1u32, 2, 4, 8] {
        // Variant A: all lanes scan from DRAM every pass.
        let tl = TwoLevel::new(params);
        let far = tl.far_from_vec(data.clone());
        let mut hist = [0u64; 64];
        for _ in 0..passes {
            tl.begin_phase("scan.dram");
            let partials: Vec<Hist> =
                par_scan_far(&tl, &far, 1 << 14, lanes, |mut h: Hist, piece| {
                    histogram_of(piece, &mut h.0);
                    // One op per element, charged to the scanning lane.
                    tl.charge_compute(piece.len() as u64);
                    h
                })
                .unwrap();
            for p in partials {
                for (a, b) in hist.iter_mut().zip(p.0) {
                    *a += b;
                }
            }
            tl.end_phase();
        }
        let dram_time = simulate_flow(&tl.take_trace(), &machine).seconds;

        // Variant B: stage once into the scratchpad, then scan from near.
        let tl = TwoLevel::new(params);
        let far = tl.far_from_vec(data.clone());
        let mut near = tl.near_alloc::<u64>(n).expect("fits the scratchpad");
        tl.begin_phase("stage");
        // All lanes cooperate on the one-off staging transfer.
        charged_copy(
            &tl,
            CopyKind::FarToNear,
            far.as_slice_uncharged(),
            near.as_mut_slice_uncharged(),
            lanes,
            1,
        );
        let mut hist2 = [0u64; 64];
        for _ in 0..passes {
            tl.begin_phase("scan.near");
            // Each lane scans its stripe of the staged copy.
            let per = n.div_ceil(lanes);
            for (lane, lo) in (0..n).step_by(per).enumerate() {
                let hi = (lo + per).min(n);
                with_lane(lane, || {
                    let mut r = NearReader::with_range(&tl, &near, lo..hi, 1 << 14);
                    let mut buf = Vec::new();
                    while r.next_chunk(&mut buf).unwrap() > 0 {
                        histogram_of(&buf, &mut hist2);
                        tl.charge_compute(buf.len() as u64);
                    }
                });
            }
            tl.end_phase();
        }
        // Results must agree regardless of placement.
        assert_eq!(hist, hist2);
        let staged_time = simulate_flow(&tl.take_trace(), &machine).seconds;

        t.row(vec![
            passes.to_string(),
            secs(dram_time),
            secs(staged_time),
            ratio(dram_time / staged_time),
        ]);
    }
    println!("\nhistogram over {n} u64, rho = 4, {lanes} cores\n");
    println!("{}", t.render());
    println!(
        "single pass: staging costs a full extra transfer — the scratchpad \
         cannot help (§I). Reuse amortizes the staging and approaches rho."
    );
}
