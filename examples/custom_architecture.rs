//! Define a custom machine (an HBM-class node) and study a sort on it with
//! both simulation engines.
//!
//! Run: `cargo run --release --example custom_architecture`

use two_level_mem::analysis::table::{secs, Table};
use two_level_mem::memsim::config::MemSideConfig;
use two_level_mem::prelude::*;

/// A hypothetical 2020s-class node: 64 fat cores, HBM2-like near memory
/// (8 stacks' worth of bandwidth), DDR4-class far memory.
fn hbm_node() -> MachineConfig {
    let mut m = MachineConfig::fig4(64, 8.0);
    m.name = "hbm-node-64c".into();
    m.core_hz = 2.4e9;
    m.ops_per_cycle = 1.0;
    m.per_core_stream_bytes_per_sec = 20e9;
    m.far = MemSideConfig {
        channels: 8,
        channel_bytes_per_sec: 19.2e9, // DDR4-2400
        efficiency: 0.82,
        latency_s: 90e-9,
        row_hit_s: 64.0 / 19.2e9,
        row_miss_penalty_s: 28e-9,
        banks_per_channel: 16,
        row_bytes: 8192,
        dc_entries: 32_768,
    };
    m.near = MemSideConfig {
        channels: 32,
        channel_bytes_per_sec: 16.0e9, // HBM pseudo-channels
        efficiency: 0.85,
        latency_s: 60e-9,
        row_hit_s: 64.0 / 16.0e9,
        row_miss_penalty_s: 12e-9,
        banks_per_channel: 16,
        row_bytes: 2048,
        dc_entries: 32_768,
    };
    m
}

fn main() {
    let machine = hbm_node();
    println!(
        "{}: far {:.0} GB/s, near {:.0} GB/s (rho = {:.1}), {:.0} Gops/s",
        machine.name,
        machine.far.sustained_bw() / 1e9,
        machine.near.sustained_bw() / 1e9,
        machine.near.sustained_bw() / machine.far.sustained_bw(),
        machine.compute_rate() / 1e9,
    );
    let verdict = two_level_mem::model::bounds::bandwidth_bound_verdict(&machine.machine_rates(8));
    println!(
        "sorting on this node is {} (pressure {:.2})",
        if verdict.is_memory_bound() {
            "memory-bandwidth bound"
        } else {
            "compute bound"
        },
        verdict.pressure()
    );

    // Run NMsort once; replay the trace through both engines.
    let params = ScratchpadParams::new(64, 8.0, 64 << 20, 4 << 20).unwrap();
    let tl = TwoLevel::new(params);
    let input = tl.far_from_vec(generate(Workload::UniformU64, 2_000_000, 3));
    nmsort(
        &tl,
        input,
        &NmSortConfig {
            sim_lanes: 64,
            chunk_elems: Some(500_000),
            ..Default::default()
        },
    )
    .unwrap();
    let trace = tl.take_trace();

    let flow = simulate_flow(&trace, &machine);
    let des = simulate_des(&trace, &machine, &DesOptions::default());
    let des_coarse = simulate_des(
        &trace,
        &machine,
        &DesOptions {
            req_bytes: 1024,
            mlp: 8,
        },
    );
    let mut t = Table::new(["engine", "sim time (s)"]);
    t.row(vec!["analytic flow".to_string(), secs(flow.seconds)]);
    t.row(vec!["DES, 64 B requests".to_string(), secs(des.seconds)]);
    t.row(vec![
        "DES, 1 KiB requests".to_string(),
        secs(des_coarse.seconds),
    ]);
    println!("\n{}", t.render());
    println!(
        "the analytic engine ignores queueing; the DES engines model per-request\n\
         contention on channels, banks and NoC links — agreement within tens of\n\
         percent is expected for bandwidth-bound phases."
    );
}
