//! Compare NMsort against the GNU-style DRAM-only baseline across
//! scratchpad bandwidths — a miniature of the paper's Table I.
//!
//! Run: `cargo run --release --example sort_comparison`

use two_level_mem::analysis::compare_runs;
use two_level_mem::analysis::table::{count, ratio, secs, Table};
use two_level_mem::prelude::*;

fn main() {
    let n = 4_000_000usize;
    let lanes = 128usize;
    let params = ScratchpadParams::new(64, 4.0, 64 << 20, 8 << 20).unwrap();
    let data = generate(Workload::UniformU64, n, 7);

    // Baseline: DRAM only.
    let tl = TwoLevel::new(params);
    let input = tl.far_from_vec(data.clone());
    let base = baseline_sort(
        &tl,
        input,
        &BaselineConfig {
            sim_lanes: lanes,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(base
        .output
        .as_slice_uncharged()
        .windows(2)
        .all(|w| w[0] <= w[1]));
    let base_trace = tl.take_trace();

    // NMsort, one run; the byte trace is independent of rho, so we replay it
    // on machines with different scratchpad bandwidths.
    let tl = TwoLevel::new(params);
    let input = tl.far_from_vec(data);
    let nm = nmsort(
        &tl,
        input,
        &NmSortConfig {
            sim_lanes: lanes,
            chunk_elems: Some(n / 8),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(nm
        .output
        .as_slice_uncharged()
        .windows(2)
        .all(|w| w[0] <= w[1]));
    let nm_trace = tl.take_trace();

    let base_sim = simulate_flow(&base_trace, &MachineConfig::fig4(lanes as u32, 2.0));
    let mut t = Table::new([
        "rho",
        "GNU (s)",
        "NMsort (s)",
        "speedup",
        "DRAM ratio",
        "near acc",
    ]);
    for rho in [2.0, 4.0, 8.0] {
        let sim = simulate_flow(&nm_trace, &MachineConfig::fig4(lanes as u32, rho));
        let c = compare_runs(&base_sim, &sim);
        t.row(vec![
            format!("{rho}x"),
            secs(base_sim.seconds),
            secs(sim.seconds),
            ratio(c.speedup),
            ratio(c.far_access_ratio),
            count(sim.near_accesses),
        ]);
    }
    println!("\n{n} random u64, {lanes} simulated cores\n");
    println!("{}", t.render());
}
