//! When does sorting become memory-bandwidth bound? (§V-A)
//!
//! Run: `cargo run --release --example memory_bound_analysis`

use two_level_mem::analysis::frontier::{fig4_crossover_cores, frontier_for_cores};
use two_level_mem::analysis::table::Table;
use two_level_mem::model::bounds::{bandwidth_bound_verdict, MachineRates};

fn main() {
    // The paper's own numbers: x ~ 1e10 ops/s, y ~ 1e9 elem/s, Z ~ 1e6.
    let paper = MachineRates::paper_fig4();
    let v = bandwidth_bound_verdict(&paper);
    println!(
        "paper's §V-A estimate: feed {:.2e} vs consume {:.2e} -> pressure {:.2}",
        v.feed_rate,
        v.consume_rate,
        v.pressure()
    );

    // Sweep core counts on the Fig. 4 node.
    let mut t = Table::new(["cores", "pressure", "memory-bound?"]);
    for p in frontier_for_cores(&[16, 32, 64, 128, 192, 256, 384, 512], 1.0, 8) {
        t.row(vec![
            p.cores.to_string(),
            format!("{:.2}", p.pressure),
            if p.memory_bound() { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("\n{}", t.render());

    match fig4_crossover_cores(8) {
        Some(c) => println!(
            "crossover at {c} cores — the paper observed the flip between 128 \
             (not bound) and 256 (bound)."
        ),
        None => println!("no crossover found"),
    }
}
