//! Scratchpad-accelerated k-means (the paper's §VII extension).
//!
//! The interesting quantity is the *steady-state iteration time*: seeding
//! and staging are one-off costs, while Lloyd iterations stream the whole
//! point set once each — from DRAM in the baseline, from the scratchpad in
//! the near variant. On a bandwidth-bound node the per-iteration speedup
//! approaches ρ.
//!
//! Run: `cargo run --release --example kmeans_clustering`

use two_level_mem::analysis::table::{ratio, Table};
use two_level_mem::kmeans::generate_blobs;
use two_level_mem::prelude::*;

/// Sum of the `kmeans.iter` phase times in a simulated run.
fn iter_seconds(sim: &SimReport) -> f64 {
    sim.phase_summary()
        .into_iter()
        .filter(|(n, _)| n == "kmeans.iter")
        .map(|(_, s)| s)
        .sum()
}

fn main() {
    // d=2, k=4: few ops per byte, so a 256-core node is bandwidth-bound on
    // this kernel; spread keeps Lloyd busy for a useful number of rounds.
    let (n, d, k) = (2_000_000usize, 2usize, 4usize);
    let params = ScratchpadParams::new(64, 4.0, 64 << 20, 4 << 20).unwrap();
    let points = generate_blobs(n, d, k, 40.0, 11);
    let cfg = KMeansConfig {
        k,
        dim: d,
        max_iters: 15,
        tol: 0.0,
        sim_lanes: 256,
        ..Default::default()
    };

    // DRAM-streaming baseline.
    let tl = TwoLevel::new(params);
    let arr = tl.far_from_vec(points.clone());
    let far_res = kmeans_far(&tl, &arr, &cfg);
    let far_trace = tl.take_trace();

    // Scratchpad-resident variant (same numerics, different placement).
    let tl = TwoLevel::new(params);
    let arr = tl.far_from_vec(points);
    let near_res = kmeans_near(&tl, &arr, &cfg).expect("points fit the scratchpad");
    let near_trace = tl.take_trace();
    assert_eq!(far_res.assignments, near_res.assignments);
    println!(
        "clustered {n} points (d={d}, k={k}) in {} iterations, inertia/pt {:.1}",
        far_res.iterations,
        far_res.inertia / n as f64
    );

    let mut t = Table::new([
        "rho",
        "DRAM iters (ms)",
        "scratchpad iters (ms)",
        "iter speedup",
        "total speedup",
    ]);
    for rho in [2.0, 4.0, 8.0] {
        let m = MachineConfig::fig4(256, rho);
        let f = simulate_flow(&far_trace, &m);
        let nr = simulate_flow(&near_trace, &m);
        let (fi, ni) = (iter_seconds(&f), iter_seconds(&nr));
        t.row(vec![
            format!("{rho}x"),
            format!("{:.3}", fi * 1e3),
            format!("{:.3}", ni * 1e3),
            ratio(fi / ni),
            ratio(f.seconds / nr.seconds),
        ]);
    }
    println!("\n{}", t.render());
    println!("paper's claim (§VII): 'a factor of rho faster ... for many sizes of data and k'");
}
