//! Address-level study: how access patterns move through the L1/L2
//! hierarchy into the two memories (the Ariel-like mode of the simulator).
//!
//! Run: `cargo run --release --example cache_study`

use two_level_mem::analysis::table::Table;
use two_level_mem::memsim::address::{patterns, run_hierarchy};
use two_level_mem::prelude::*;

fn main() {
    let m = MachineConfig::fig4(256, 4.0);
    let mut t = Table::new(["pattern", "L1 hit%", "L2 hit%", "mem lines", "time (ms)"]);

    let cases: Vec<(&str, Vec<_>)> = vec![
        ("stream 4 MB (far)", patterns::scan(0, 4 << 20, 64, false)),
        ("stream 4 MB (near)", patterns::scan(0, 4 << 20, 64, true)),
        ("word-wise scan 4 MB", patterns::scan(0, 4 << 20, 8, false)),
        (
            "8 KB hot loop x100",
            patterns::working_set(0, 8 << 10, 64, 100, false),
        ),
        (
            "256 KB loop x10",
            patterns::working_set(0, 256 << 10, 64, 10, false),
        ),
        (
            "random over 1 GB",
            patterns::random(0, 1 << 30, 65_536, false),
        ),
    ];
    for (name, refs) in cases {
        let st = run_hierarchy(&refs, &m);
        let l1 = st.l1_hits as f64 / (st.l1_hits + st.l1_misses).max(1) as f64;
        let l2 = st.l2_hits as f64 / (st.l2_hits + st.l2_misses).max(1) as f64;
        t.row(vec![
            name.to_string(),
            format!("{:.1}", l1 * 100.0),
            format!("{:.1}", l2 * 100.0),
            (st.far_lines + st.near_lines).to_string(),
            format!("{:.3}", st.seconds * 1e3),
        ]);
    }
    println!("\none in-order core against the Fig. 7 hierarchy\n");
    println!("{}", t.render());
    println!(
        "note: a single core sees only the modest latency difference between\n\
         the two memories (50 vs 80 ns) — the scratchpad's real advantage is\n\
         aggregate bandwidth across many cores (§I: it is 'not designed to\n\
         accelerate memory-latency-bound applications')."
    );
}
