//! **two-level-mem** — a reproduction of *"Two-Level Main Memory Co-Design:
//! Multi-Threaded Algorithmic Primitives, Analysis, and Simulation"*
//! (IPDPS 2015) as a Rust workspace.
//!
//! This façade crate re-exports the workspace so applications can depend on
//! one crate:
//!
//! * [`model`] — the algorithmic scratchpad model (`B`, `ρB`, `M`, `Z`),
//!   cost ledger, theorems, and the memory-bound inequality.
//! * [`scratchpad`] — the user-controlled two-level memory runtime:
//!   capacity-checked near allocation, charged transfers, DMA, phase traces.
//! * [`core`] — the sorting algorithms: NMsort, the sequential scratchpad
//!   sample sort, the external mergesort engine, and the GNU-style
//!   single-level baseline.
//! * [`memsim`] — the architectural simulator (Fig. 4 machine, analytic and
//!   discrete-event replay, cache and DRAM models).
//! * [`kmeans`] — scratchpad-accelerated k-means (§VII extension).
//! * [`workloads`] — seeded input generators.
//! * [`analysis`] — predicted-vs-measured validation, speedups, frontiers.
//!
//! # Example: sort on a simulated two-level memory
//!
//! ```
//! use two_level_mem::prelude::*;
//!
//! // A small two-level memory: 64 B far blocks, rho = 4, M = 4 MiB, Z = 64 KiB.
//! let params = ScratchpadParams::new(64, 4.0, 4 << 20, 64 << 10).unwrap();
//! let tl = TwoLevel::new(params);
//!
//! // Sort a million random u64s with NMsort.
//! let data = two_level_mem::workloads::generate(Workload::UniformU64, 1_000_000, 42);
//! let input = tl.far_from_vec(data);
//! let report = nmsort(&tl, input, &NmSortConfig::default()).unwrap();
//! assert!(report.output.as_slice_uncharged().windows(2).all(|w| w[0] <= w[1]));
//!
//! // Replay the recorded phase trace on the paper's Fig. 4 machine.
//! let machine = MachineConfig::fig4(256, 4.0);
//! let sim = simulate_flow(&tl.take_trace(), &machine);
//! println!("simulated time: {:.3} s, DRAM accesses: {}, scratchpad accesses: {}",
//!          sim.seconds, sim.far_accesses, sim.near_accesses);
//! ```

pub use tlmm_analysis as analysis;
pub use tlmm_core as core;
pub use tlmm_kmeans as kmeans;
pub use tlmm_memsim as memsim;
pub use tlmm_model as model;
pub use tlmm_scratchpad as scratchpad;
pub use tlmm_tile as tile;
pub use tlmm_workloads as workloads;

/// The names most applications need.
pub mod prelude {
    pub use tlmm_core::baseline::{baseline_sort, BaselineConfig};
    pub use tlmm_core::nmsort::{
        nmsort, ChunkSorter, DegradationStats, NmSortConfig, NmSortReport,
    };
    pub use tlmm_core::oblivious::{spms_sort, squaresort_sort, ObliviousConfig, ObliviousReport};
    pub use tlmm_core::parsort::{par_scratchpad_sort, ParSortConfig};
    pub use tlmm_core::select::{select_kth, SelectConfig};
    pub use tlmm_core::seqsort::{seq_scratchpad_sort, SeqSortConfig};
    pub use tlmm_core::SortError;
    pub use tlmm_kmeans::{kmeans_far, kmeans_near, kmeans_tiled, KMeansConfig};
    pub use tlmm_memsim::des::{simulate_des, DesOptions};
    pub use tlmm_memsim::{simulate_flow, MachineConfig, SimReport};
    pub use tlmm_model::{CostSnapshot, Engine, ScratchpadParams};
    pub use tlmm_scratchpad::{FarArray, FaultOp, FaultPlan, NearArray, TwoLevel, FAULT_SEED_ENV};
    pub use tlmm_tile::{gemm_far, gemm_near, GemmConfig, Matrix};
    pub use tlmm_workloads::{generate, Workload};
}
