//! Offline stand-in for the `rayon` crate.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `rayon` to this implementation. It supports the combinator surface the
//! repo uses (`par_iter`, `par_chunks_mut`, `into_par_iter`, `enumerate`,
//! `zip`, `copied`, `map`, `for_each`, `collect`, `join`) with genuine
//! multi-threading: items are statically partitioned into one contiguous
//! chunk per available core and executed on `std::thread::scope` threads.
//!
//! Differences from real rayon: combinators are *eager* (each `map` is a
//! full parallel pass), there is no work stealing, and nested parallelism
//! spawns fresh OS threads instead of reusing a pool. For the coarse
//! chunk-granular parallelism in this repo that is an acceptable trade.

use std::num::NonZeroUsize;

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` over every item, statically partitioned across threads,
/// returning results in input order.
fn run<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let workers = threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    {
        let mut items = items;
        let per = n.div_ceil(workers);
        while !items.is_empty() {
            let rest = items.split_off(items.len().saturating_sub(per));
            chunks.push(rest);
        }
        chunks.reverse(); // split_off collected tail-first
    }
    let f = &f;
    let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon-stub worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-stub join arm panicked"))
    })
}

/// An eager "parallel iterator": a materialized list of items whose
/// heavyweight combinators (`map`, `for_each`) execute across threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn zip<U: Send, I: IntoParallelIterator<Item = U>>(self, other: I) -> ParIter<(T, U)> {
        ParIter {
            items: self
                .items
                .into_iter()
                .zip(other.into_par_iter().items)
                .collect(),
        }
    }

    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: run(self.items, f),
        }
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run(self.items, f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    pub fn reduce<Id, F>(self, identity: Id, op: F) -> T
    where
        Id: Fn() -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<T: Copy + Send + Sync> ParIter<&T> {
    pub fn copied(self) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().copied().collect(),
        }
    }

    pub fn cloned(self) -> ParIter<T> {
        self.copied()
    }
}

/// Conversion into a [`ParIter`], mirroring `rayon::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter`/`par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
    fn par_chunks(&self, chunk: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk).collect(),
        }
    }
}

/// `par_iter_mut`/`par_chunks_mut` on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk).collect(),
        }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

pub mod iter {
    pub use super::{IntoParallelIterator, ParIter};
}

pub mod slice {
    pub use super::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().copied().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_enumerate_for_each() {
        let mut v = vec![0usize; 1000];
        v.par_chunks_mut(100).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i / 100);
        }
    }

    #[test]
    fn zip_pairs_in_order() {
        let a = [1, 2, 3];
        let b = vec!["x", "y", "z"];
        let out: Vec<(i32, &str)> = a
            .par_iter()
            .copied()
            .zip(b.into_par_iter())
            .map(|(n, s)| (n, s))
            .collect();
        assert_eq!(out, vec![(1, "x"), (2, "y"), (3, "z")]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn actually_uses_multiple_threads_for_large_inputs() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let v: Vec<u32> = (0..100_000).collect();
        v.par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        let n = ids.lock().unwrap().len();
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1
        {
            assert!(n > 1, "expected multiple worker threads, saw {n}");
        }
    }
}
