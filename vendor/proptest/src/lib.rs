//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `proptest` to this implementation. It keeps the repo's test spelling —
//! `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {..} }`,
//! `any::<T>()`, range strategies, `proptest::collection::vec`,
//! `prop_map`, tuple strategies, `prop_assert!`/`prop_assert_eq!` — with
//! deterministic seeded generation. There is **no shrinking**: a failing
//! case panics with the case number and seed so it can be reproduced, but
//! is not minimized.

use std::ops::Range;

/// Deterministic test-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n = 0` means any `u64`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return self.next_u64();
        }
        loop {
            let x = self.next_u64();
            let hi = ((x as u128 * n as u128) >> 64) as u64;
            let lo = x.wrapping_mul(n);
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;

    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "anything" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats across magnitudes (no NaN/inf: the repo's
        // properties assume ordinary numbers).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(121) as i32 - 60;
        mantissa * 2f64.powi(exp)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`cases` is the only knob the repo uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Run one named property: `cases` deterministic seeds, with the failing
/// case's seed reported on panic.
pub fn run_cases(name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut TestRng)) {
    for i in 0..config.cases {
        // Stable per-test, per-case seed.
        let mut seed = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
        }
        seed = seed.wrapping_add(i as u64);
        let mut rng = TestRng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = result {
            eprintln!("proptest stub: property `{name}` failed at case {i} (seed {seed:#x}); no shrinking is performed");
            std::panic::resume_unwind(payload);
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests {$cfg} $($rest)*);
    };
    (@tests {$cfg:expr} $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@tests {$crate::ProptestConfig::default()} $($rest)*);
    };
}

pub mod prelude {
    pub use super::collection;
    pub use super::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    /// `prop::` path alias used by some proptest idioms.
    pub mod prop {
        pub use super::super::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in -5i32..5, mut v in collection::vec(0u64..100, 0..50)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            v.sort_unstable();
            prop_assert!(v.len() < 50);
            prop_assert!(v.iter().all(|&e| e < 100), "v = {:?}", v);
        }

        #[test]
        fn tuples_and_prop_map(pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 19);
        }

        #[test]
        fn any_bool_varies(b in any::<bool>(), n in any::<u64>()) {
            let _ = (b, n);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = collection::vec(0u64..1000, 1..20);
        let mut r1 = TestRng::new(42);
        let mut r2 = TestRng::new(42);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn vec_lengths_cover_range() {
        let s = collection::vec(0u64..10, 0..4);
        let mut rng = TestRng::new(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng).len()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
