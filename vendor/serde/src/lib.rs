//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `serde` (and `serde_derive`) to this self-contained implementation. It
//! keeps the *spelling* of the serde surface the repo uses — `use
//! serde::{Serialize, Deserialize}` plus `#[derive(Serialize,
//! Deserialize)]` on named-field structs and fieldless enums — but
//! simplifies the data model: serialization goes through a concrete JSON
//! [`Value`] tree instead of the visitor architecture, and a JSON codec is
//! built in as [`json`] (standing in for `serde_json`).

mod value;

pub mod json;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Serialization error (also used for deserialization mismatches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_u64().ok_or_else(|| Error::custom(format!(
                    "expected unsigned integer, found {}", v.kind())))?;
                <$t>::try_from(x).map_err(|_| Error::custom(format!(
                    "{} out of range for {}", x, stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_i64().ok_or_else(|| Error::custom(format!(
                    "expected integer, found {}", v.kind())))?;
                <$t>::try_from(x).map_err(|_| Error::custom(format!(
                    "{} out of range for {}", x, stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|x| x as $t).ok_or_else(|| Error::custom(format!(
                    "expected number, found {}", v.kind())))
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-element sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected map, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected map, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Support machinery for the derive macros; not a public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Look up and decode a named struct field.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Map(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, fv)) => T::from_value(fv),
                None => Err(Error::custom(format!("missing field `{name}`"))),
            },
            other => Err(Error::custom(format!(
                "expected map for struct, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        for v in [-1i64, i64::MIN, i64::MAX] {
            assert_eq!(i64::from_value(&v.to_value()).unwrap(), v);
        }
        for v in [0.5f64, -1e300, 0.0] {
            assert_eq!(f64::from_value(&v.to_value()).unwrap(), v);
        }
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "héllo \"quoted\"".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), o);
        let o = Some(7u8);
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), o);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(__private::field::<u64>(&v, "a").unwrap(), 1);
        assert!(__private::field::<u64>(&v, "b").is_err());
    }
}
