//! Built-in JSON codec (standing in for `serde_json`).
//!
//! `to_string` / `to_string_pretty` render a [`Serialize`] type; `from_str`
//! parses JSON text and decodes a [`Deserialize`] type. Numbers parse to
//! `u64` when possible, then `i64`, then `f64`; non-finite floats render
//! as `null` (JSON has no representation for them).

use crate::{Deserialize, Error, Serialize, Value};

/// Render `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value_to_string(&value.to_value()))
}

/// Render `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Parse JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_value(s)?)
}

/// Parse JSON text into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

/// Render a raw [`Value`] as compact JSON.
pub fn value_to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None);
    out
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, '[', ']', items.len(), |out, i, ind| {
            write_value(out, &items[i], ind)
        }),
        Value::Map(entries) => {
            write_compound(out, indent, '{', '}', entries.len(), |out, i, ind| {
                write_string(out, &entries[i].0);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, ind);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest-round-trip Display; force a decimal point or exponent
    // so the value re-parses as a float, keeping F64/I64 distinguishable.
    let s = x.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_text() {
        for (v, expect) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::U64(18446744073709551615), "18446744073709551615"),
            (Value::I64(-42), "-42"),
            (Value::F64(1.5), "1.5"),
            (Value::F64(3.0), "3.0"),
        ] {
            let s = value_to_string(&v);
            assert_eq!(s, expect);
            assert_eq!(parse_value(&s).unwrap(), v);
        }
    }

    #[test]
    fn float_precision_survives() {
        for x in [0.1, 1e-300, 2.2250738585072014e-308, 123456.789012345] {
            let s = value_to_string(&Value::F64(x));
            match parse_value(&s).unwrap() {
                Value::F64(y) => assert_eq!(x, y),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let cases = [
            "plain",
            "with \"quotes\"",
            "tab\tnewline\n",
            "unicode é 漢 🎉",
        ];
        for s in cases {
            let rendered = value_to_string(&Value::Str(s.to_string()));
            assert_eq!(parse_value(&rendered).unwrap(), Value::Str(s.to_string()));
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            parse_value(r#""é🎉""#).unwrap(),
            Value::Str("é🎉".to_string())
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::Null])),
            (
                "b".into(),
                Value::Map(vec![("c".into(), Value::Str("x".into()))]),
            ),
            ("empty_seq".into(), Value::Seq(vec![])),
            ("empty_map".into(), Value::Map(vec![])),
        ]);
        let compact = value_to_string(&v);
        assert_eq!(parse_value(&compact).unwrap(), v);
        let mut pretty = String::new();
        super::write_value(&mut pretty, &v, Some(0));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_value("").is_err());
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("123 x").is_err());
        assert!(parse_value(r#""unterminated"#).is_err());
    }
}
