//! The JSON-shaped value tree all (de)serialization goes through.

/// A dynamically typed value, mirroring the JSON data model (with the
/// integer split JSON implementations commonly keep: `u64` vs `i64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) => u64::try_from(x).ok(),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) => i64::try_from(x).ok(),
            Value::F64(x) if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 => {
                Some(x as i64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::U64(x) => Some(x as f64),
            Value::I64(x) => Some(x as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Map lookup by key (`None` for non-maps and absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::json::value_to_string(self))
    }
}
