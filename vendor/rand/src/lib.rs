//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `rand` to this self-contained implementation. It covers exactly the
//! surface the repo uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`] over
//! integer and float ranges, and [`distributions::Distribution`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high quality
//! and deterministic, but the streams differ from upstream `rand`'s
//! ChaCha-based `StdRng`, so seeded sequences are stable *within* this
//! repo only.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(&mut |n| plumbing::next_n(self, n))
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        plumbing::unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed from system entropy; here, from the monotonic clock (the repo
    /// only uses explicit seeds, this exists for API compatibility).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(t)
    }
}

mod plumbing {
    use super::RngCore;

    /// Map a `u64` to the unit interval `[0, 1)`.
    pub fn unit_f64(x: u64) -> f64 {
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased sample from `[0, n)` via Lemire's multiply-shift with
    /// rejection; `n = 0` means "any u64".
    pub fn next_n<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        if n == 0 {
            return rng.next_u64();
        }
        loop {
            let x = rng.next_u64();
            let hi = ((x as u128 * n as u128) >> 64) as u64;
            let lo = x.wrapping_mul(n);
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }
}

/// Uniform sampling from range types, mirroring `rand`'s `SampleRange`.
/// The sampler closure draws uniformly from `[0, n)` (`n = 0` ⇒ any u64).
///
/// Like upstream, this is a *blanket* impl over [`SampleUniform`] types —
/// a single applicable impl is what lets `i + rng.gen_range(0..16)` infer
/// the sample type from surrounding arithmetic.
pub trait SampleRange<T> {
    fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> T;
}

/// Types uniformly sampleable from half-open / inclusive ranges
/// (mirrors `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_half_open(start: Self, end: Self, draw: &mut dyn FnMut(u64) -> u64) -> Self;
    fn sample_inclusive(start: Self, end: Self, draw: &mut dyn FnMut(u64) -> u64) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, draw)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, draw: &mut dyn FnMut(u64) -> u64) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(start, end, draw)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: Self, end: Self, draw: &mut dyn FnMut(u64) -> u64) -> Self {
                let span = (end as i128 - start as i128) as u64;
                let off = draw(span);
                (start as i128 + off as i128) as $t
            }
            fn sample_inclusive(start: Self, end: Self, draw: &mut dyn FnMut(u64) -> u64) -> Self {
                let span = (end as i128 - start as i128 + 1) as u64; // 0 ⇒ full u64 domain
                let off = draw(span);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: Self, end: Self, draw: &mut dyn FnMut(u64) -> u64) -> Self {
                let u = plumbing::unit_f64(draw(0)) as $t;
                start + u * (end - start)
            }
            fn sample_inclusive(start: Self, end: Self, draw: &mut dyn FnMut(u64) -> u64) -> Self {
                Self::sample_half_open(start, end, draw)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

pub mod distributions {
    use super::{plumbing, Rng, RngCore};

    /// A distribution over `T` sampleable with any [`Rng`].
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type: full range for integers,
    /// `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            plumbing::unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            plumbing::unit_f64(rng.next_u64()) as f32
        }
    }

    // Keep the blanket RngCore import "used" in all macro expansions.
    const _: fn(&mut dyn RngCore) = |_| {};
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Thread-local convenience generator (`rand::thread_rng` shape).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    SeedableRng::seed_from_u64(0xA076_1D64_78BD_642F ^ COUNTER.fetch_add(1, Ordering::Relaxed))
}

pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::Distribution;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn standard_distribution_and_dyn_rng() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.gen();
        let _: bool = rng.gen();
        // `R: Rng + ?Sized` call shape used by tlmm-workloads.
        fn via_dyn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let v = via_dyn(&mut rng);
        assert!((0.0..1.0).contains(&v));
        let s = super::distributions::Standard;
        let _: f64 = s.sample(&mut rng);
    }

    #[test]
    fn signed_and_inclusive_ranges() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: u8 = rng.gen_range(0..=255);
            let _ = y; // full domain, always in range
        }
    }
}
