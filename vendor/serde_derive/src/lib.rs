//! Derive macros for the offline `serde` stand-in.
//!
//! Supports the shapes this workspace derives on: structs with named
//! fields and fieldless enums (tuple/unit structs and payload-carrying
//! variants produce a compile error naming the limitation). Written
//! against `proc_macro` directly — `syn`/`quote` are unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Struct with named fields.
    Struct { fields: Vec<String> },
    /// Enum whose variants all carry no data.
    Enum { variants: Vec<String> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => render(&name, &shape, mode)
            .parse()
            .expect("serde_derive stub generated invalid code"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes and visibility to the `struct`/`enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            None => return Err("serde_derive stub: no struct or enum found".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // #[attr]
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break "struct";
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                i += 1;
                break "enum";
            }
            Some(_) => i += 1, // pub, pub(crate) group, etc.
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive stub: missing type name".into()),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "serde_derive stub: generic type `{name}` is not supported"
        )),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Ok((
                    name,
                    Shape::Struct {
                        fields: parse_named_fields(&body)?,
                    },
                ))
            } else {
                let shape = parse_enum_variants(&name, &body)?;
                Ok((name, shape))
            }
        }
        _ => Err(format!(
            "serde_derive stub: `{name}` must be a brace-delimited struct or enum \
             (tuple/unit shapes are not supported)"
        )),
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Skip attributes and visibility.
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = body.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                let field = id.to_string();
                i += 1;
                match body.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    _ => {
                        return Err(format!(
                            "serde_derive stub: expected `:` after field `{field}`"
                        ))
                    }
                }
                // Skip the type up to a top-level comma (tracking angle depth).
                let mut angle = 0i32;
                while let Some(t) = body.get(i) {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
                i += 1; // past the comma (or end)
                fields.push(field);
            }
            other => {
                return Err(format!(
                    "serde_derive stub: unexpected token `{other}` in struct body"
                ))
            }
        }
    }
    Ok(fields)
}

fn parse_enum_variants(name: &str, body: &[TokenTree]) -> Result<Shape, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                match body.get(i) {
                    None => break,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(TokenTree::Group(_)) => {
                        return Err(format!(
                            "serde_derive stub: enum `{name}` has a payload-carrying \
                             variant `{}` which is not supported",
                            variants.last().unwrap()
                        ));
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        // Skip explicit discriminant to the comma.
                        while let Some(t) = body.get(i) {
                            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                                break;
                            }
                            i += 1;
                        }
                        i += 1;
                    }
                    Some(other) => {
                        return Err(format!(
                            "serde_derive stub: unexpected token `{other}` in enum `{name}`"
                        ))
                    }
                }
            }
            other => {
                return Err(format!(
                    "serde_derive stub: unexpected token `{other}` in enum `{name}`"
                ))
            }
        }
    }
    Ok(Shape::Enum { variants })
}

fn render(name: &str, shape: &Shape, mode: Mode) -> String {
    match (shape, mode) {
        (Shape::Struct { fields }, Mode::Serialize) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push((::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         let mut __m = ::std::vec::Vec::new();\
                         {pushes}\
                         ::serde::Value::Map(__m)\
                     }}\
                 }}"
            )
        }
        (Shape::Struct { fields }, Mode::Deserialize) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__v, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\
                         ::std::result::Result::Ok(Self {{ {inits} }})\
                     }}\
                 }}"
            )
        }
        (Shape::Enum { variants }, Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("Self::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            )
        }
        (Shape::Enum { variants }, Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok(Self::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\
                         match __v {{\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\
                                 {arms}\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown variant `{{}}` for {name}\", __other))),\
                             }},\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected string for enum {name}, found {{}}\", \
                                         __other.kind()))),\
                         }}\
                     }}\
                 }}"
            )
        }
    }
}
