//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `criterion` to this minimal harness. It keeps the macro and
//! group/bencher API the repo's benches use and reports median wall-clock
//! time per iteration (no statistical analysis, no HTML reports). When
//! invoked with `--test` (as `cargo test` does for `harness = false`
//! targets) each benchmark body runs exactly once as a smoke test.

use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Throughput annotation; used to derive a rate in the printed summary.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    samples: usize,
    smoke_only: bool,
    median_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke_only {
            black_box(f());
            self.median_ns = 0.0;
            return;
        }
        // One warm-up, then timed samples.
        black_box(f());
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = times[times.len() / 2];
    }
}

fn format_duration(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false targets with `--test`; `cargo
        // bench` passes `--bench`. In test mode, only smoke-run bodies.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            smoke_only,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let group_name = "ungrouped".to_string();
        run_one(
            &group_name,
            &id.id,
            None,
            self.sample_size,
            self.smoke_only,
            f,
        );
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, smoke_only) = (self.sample_size, self.smoke_only);
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_size,
            smoke_only,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    samples: usize,
    smoke_only: bool,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        smoke_only,
        median_ns: 0.0,
    };
    f(&mut b);
    if smoke_only {
        println!("{group}/{id}: ok (smoke test)");
        return;
    }
    let rate = throughput
        .map(|t| {
            let per_sec = |count: u64| count as f64 / (b.median_ns / 1e9);
            match t {
                Throughput::Elements(n) => format!(" ({:.1} Melem/s)", per_sec(n) / 1e6),
                Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                    format!(" ({:.1} MiB/s)", per_sec(n) / (1024.0 * 1024.0))
                }
            }
        })
        .unwrap_or_default();
    println!(
        "{group}/{id}: median {}{rate} over {samples} samples",
        format_duration(b.median_ns)
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    smoke_only: bool,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &self.name,
            &id.id,
            self.throughput,
            self.sample_size,
            self.smoke_only,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &self.name,
            &id.id,
            self.throughput,
            self.sample_size,
            self.smoke_only,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_bodies() {
        let mut c = Criterion {
            sample_size: 2,
            smoke_only: true,
        };
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.sample_size(2);
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &x| {
                b.iter(|| black_box(x))
            });
            g.finish();
        }
        assert!(calls >= 1);
    }
}
