//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `parking_lot` to this thin wrapper over `std::sync`. It keeps
//! the parking_lot API shape the repo uses (no lock poisoning, guards
//! returned directly from `lock()`/`read()`/`write()`); fairness and
//! micro-contention behaviour of the real crate are not reproduced.

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion primitive; `lock()` never observes poisoning, like
/// `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
